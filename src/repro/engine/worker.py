"""Worker-side logic: task execution, library hosting, caching, peer serving.

A worker is a single-threaded event loop (plus one thread serving peer
file transfers) that:

* maintains a content-addressed :class:`~repro.engine.cache.WorkerCache`;
* executes :class:`~repro.engine.task.PythonTask` work as fresh
  ``task_runner`` subprocesses (task mode — context reload every time);
* hosts library processes that retain function contexts, forwarding
  invocations to them over per-library Unix sockets (invocation mode);
* serves cached files to peer workers (Figure 3b spanning-tree transfers).

Messages are processed in arrival order, so a ``put_file`` that precedes
a ``task`` is guaranteed visible by execution time — the manager relies
on this to stage inputs without an extra round trip.
"""

from __future__ import annotations

import os
import selectors
import shutil
import socket
import subprocess
import sys
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import repro
from repro.discover.packaging import unpack_environment
from repro.engine import messages, payloads
from repro.engine.cache import WorkerCache
from repro.engine.resources import Resources
from repro.engine.sandbox import ARGS_FILE, CODE_FILE, RESULT_FILE, Sandbox
from repro.errors import CacheError, EngineError, ProtocolError
from repro.obs.perflog import rss_bytes
from repro.obs.trace import get_tracer
from repro.util.logging import get_logger


def _child_env() -> Dict[str, str]:
    """Environment for spawned runner/library processes.

    Children run with ``cwd`` inside their sandbox, so any *relative*
    ``PYTHONPATH`` entry the worker inherited (e.g. ``src`` from the
    test harness) would no longer resolve.  Prepend the absolute parent
    directory of the installed ``repro`` package so subprocesses import
    the same code regardless of the caller's working directory.
    """
    env = dict(os.environ)
    pkg_parent = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    parts = [pkg_parent] + [
        p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
    ]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


@dataclass
class _RunningTask:
    task_id: int
    proc: subprocess.Popen
    sandbox: Sandbox
    staging_time: float
    env_time: float
    started: float
    timeout: Optional[float] = None
    deadline: Optional[float] = None  # monotonic; None = unbounded


@dataclass
class _LibraryHandle:
    instance_id: int
    library_name: str
    sandbox_dir: str
    socket_path: str
    listener: socket.socket
    proc: subprocess.Popen
    worker_overhead: float
    conn: Optional[messages.Connection] = None
    ready: bool = False
    pending: List[tuple] = field(default_factory=list)  # queued invokes
    # task_id -> sandbox of each in-flight invocation; None when the
    # invocation needed no staged inputs (the sandbox-less fast path).
    invocations: Dict[int, Optional[Sandbox]] = field(default_factory=dict)
    staging: Dict[int, float] = field(default_factory=dict)
    # task_id -> (monotonic deadline, requested timeout seconds), only
    # for direct-mode invocations: the worker enforces those by killing
    # the library process (fork-mode children are killed library-side).
    deadlines: Dict[int, tuple] = field(default_factory=dict)


class _TransferServer(threading.Thread):
    """Serves ``get``-by-hash requests to peer workers from the cache dir.

    Runs as a daemon thread: only ever *reads* completed (atomically
    renamed) cache files, so it needs no lock against the main loop.
    """

    def __init__(self, cache_root: str):
        super().__init__(daemon=True, name="peer-transfer-server")
        self.cache_root = cache_root
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(16)
        self.port = self.sock.getsockname()[1]
        self.bytes_served = 0
        self.requests_served = 0
        self._stop = threading.Event()

    def run(self) -> None:
        self.sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                client, _ = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn = messages.Connection(client, name="peer")
                request, _ = conn.receive(timeout=5.0)
                digest = str(request.get("hash", ""))
                path = os.path.join(self.cache_root, digest)
                if request.get("type") == "get" and os.path.isfile(path):
                    with open(path, "rb") as fh:
                        data = fh.read()
                    conn.send({"type": "data", "ok": True}, data)
                    self.bytes_served += len(data)
                    self.requests_served += 1
                else:
                    conn.send({"type": "data", "ok": False, "error": "not cached"})
            except Exception:
                pass
            finally:
                client.close()

    def stop(self) -> None:
        self._stop.set()
        try:
            self.sock.close()
        except OSError:
            pass


class Worker:
    """One worker node of the execution engine."""

    def __init__(
        self,
        manager_host: str,
        manager_port: int,
        *,
        name: str,
        cores: int = 4,
        memory: int = 4096,
        disk: int = 4096,
        workdir: str,
        cache_capacity: Optional[int] = None,
        status_interval: float = 2.0,
    ):
        self.name = name
        # Status reports double as liveness heartbeats: the manager
        # declares a worker silent past its deadline lost, so the
        # interval must stay well below Manager.liveness_deadline.
        self.status_interval = max(0.05, status_interval)
        self.resources = Resources(cores=cores, memory=memory, disk=disk)
        self.workdir = os.path.abspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        # Forwarding tracer: every event (own and absorbed from hosted
        # libraries) is queued in an outbox that _send piggybacks onto
        # the next frame bound for the manager.
        self.tracer = get_tracer(f"worker.{name}")
        self.cache = WorkerCache(
            os.path.join(self.workdir, "cache"),
            cache_capacity,
            on_evict=self._report_eviction,
            tracer=self.tracer,
        )
        self.sandbox_root = os.path.join(self.workdir, "sandboxes")
        os.makedirs(self.sandbox_root, exist_ok=True)
        self.env_root = os.path.join(self.workdir, "envs")
        os.makedirs(self.env_root, exist_ok=True)
        # Library UNIX sockets live under the worker's own workdir so
        # parallel runs never collide and leftovers die with the workdir.
        # AF_UNIX paths are capped (~108 bytes); fall back to a private
        # short tempdir when the workdir is nested too deep.
        self.socket_root = os.path.join(self.workdir, "sockets")
        os.makedirs(self.socket_root, exist_ok=True)
        self._socket_fallback: Optional[str] = None
        self.transfer_server = _TransferServer(self.cache.root)
        self.manager = messages.connect(manager_host, manager_port, name="manager")
        self.tasks: Dict[int, _RunningTask] = {}
        self.libraries: Dict[int, _LibraryHandle] = {}
        self.selector = selectors.DefaultSelector()
        self._running = True
        # Data-plane accounting mirrored to the manager in status
        # heartbeats: bytes relayed through sockets vs. handed off as
        # shared-memory descriptors.
        self.payload_copied = 0
        self.payload_mapped = 0
        # True once the welcome frame proves the manager shares this
        # host's shm domain; until then every result ships inline.
        self.shm_to_manager = False
        self.log = get_logger(f"worker.{name}")

    def _send(self, frame: Dict[str, Any], payload: bytes = b"") -> None:
        """Send one frame to the manager, piggybacking queued trace events.

        Results and failures therefore carry every worker/library event
        recorded for that task *on the frame itself*, so the manager has
        absorbed them before it consolidates the task's cost timeline.
        """
        self.manager.send(messages.attach_trace(frame, self.tracer), payload)

    def _report_eviction(self, digest: str) -> None:
        """Keep the manager's replica map truthful when the LRU evicts."""
        try:
            self._send(
                {"type": "cache_update", "hash": digest, "present": False}
            )
        except ProtocolError:
            pass  # manager is already gone; shutdown will follow

    # -- lifecycle ----------------------------------------------------------
    def register(self) -> None:
        self.transfer_server.start()
        self._send(
            {
                "type": "register",
                "worker": self.name,
                "resources": self.resources.to_dict(),
                "transfer_host": "127.0.0.1",
                "transfer_port": self.transfer_server.port,
                # shm negotiation: descriptors only flow between peers in
                # the same shared-memory domain (same machine, same boot).
                "shm_host": payloads.host_token() if payloads.enabled() else "",
            }
        )
        reply, _ = self.manager.receive(timeout=30.0)
        messages.expect(reply, "welcome")
        self.shm_to_manager = bool(
            payloads.enabled()
            and reply.get("shm_host")
            and reply.get("shm_host") == payloads.host_token()
        )
        self.log.info(
            "registered with manager (%s, shm=%s)", self.resources, self.shm_to_manager
        )

    def run(self) -> None:
        """Main loop: serve until the manager says shutdown or disconnects."""
        self.register()
        self.selector.register(self.manager.sock, selectors.EVENT_READ, ("manager", None))
        last_status = 0.0
        try:
            while self._running:
                events = self.selector.select(timeout=0.02)
                for key, _ in events:
                    kind, ref = key.data
                    if kind == "manager":
                        self._handle_manager_message()
                    elif kind == "lib-listener":
                        self._accept_library(ref)
                    elif kind == "lib-conn":
                        self._handle_library_message(ref)
                self._drain_buffered()
                self._poll_tasks()
                self._check_invocation_timeouts()
                now = time.monotonic()
                if now - last_status >= self.status_interval:
                    self._send_status()
                    last_status = now
        except ProtocolError:
            pass  # manager went away; shut down quietly
        finally:
            self.shutdown()

    def _drain_buffered(self) -> None:
        """Process frames already read ahead into connection buffers.

        The selector only wakes on new socket data; a batched flush from
        the manager (or a library) may leave complete frames sitting in
        the userspace receive buffer, which must be drained here or they
        would stall until unrelated traffic arrives.
        """
        while self._running and self.manager.pending_bytes:
            self._handle_manager_message()
        for handle in list(self.libraries.values()):
            while (
                self._running
                and handle.instance_id in self.libraries
                and handle.conn is not None
                and handle.conn.pending_bytes
            ):
                self._handle_library_message(handle)

    def _send_status(self) -> None:
        """Periodic resource-accounting report (§2.1.3): cache occupancy,
        in-flight tasks, and hosted libraries.

        The report doubles as the telemetry *resource heartbeat*: the
        ``HEARTBEAT_FIELDS`` extras (RSS, busy slots, per-instance
        library liveness) piggyback on this existing frame — no new
        round trips — and the manager folds them into per-worker gauges.
        """
        cache_stats = self.cache.stats()
        active_invocations = sum(
            len(h.invocations) for h in self.libraries.values()
        )
        report = {
            "cache": cache_stats,
            "running_tasks": len(self.tasks),
            "libraries": len(self.libraries),
            "ready_libraries": sum(1 for h in self.libraries.values() if h.ready),
            "active_invocations": active_invocations,
            "peer_bytes_served": self.transfer_server.bytes_served,
            # HEARTBEAT_FIELDS (messages.py): stable resource extras.
            "rss_bytes": rss_bytes(),
            "busy_slots": len(self.tasks) + active_invocations,
            "cache_bytes": int(cache_stats.get("bytes", 0)),
            "cache_pinned": int(cache_stats.get("pinned", 0)),
            "libraries_live": sum(
                1 for h in self.libraries.values() if h.proc.poll() is None
            ),
            "payload_bytes_copied": self.payload_copied,
            "payload_bytes_mapped": self.payload_mapped,
            "libraries_detail": {
                str(h.instance_id): {
                    "library": h.library_name,
                    "ready": h.ready,
                    "alive": h.proc.poll() is None,
                    "active_invocations": len(h.invocations),
                }
                for h in self.libraries.values()
            },
        }
        self._send({"type": "status", "report": report})

    def shutdown(self) -> None:
        self._running = False
        self.tracer.flush()
        for handle in list(self.libraries.values()):
            self._terminate_library(handle)
        for running in list(self.tasks.values()):
            if running.proc.poll() is None:
                running.proc.terminate()
        self.transfer_server.stop()
        self.manager.close()
        if self._socket_fallback is not None:
            shutil.rmtree(self._socket_fallback, ignore_errors=True)
            self._socket_fallback = None

    # -- manager messages ------------------------------------------------------
    def _handle_manager_message(self) -> None:
        message, payload = self.manager.receive(timeout=10.0)
        mtype = message["type"]
        handler = getattr(self, f"_on_{mtype}", None)
        if handler is None:
            raise ProtocolError(f"unknown manager message {mtype!r}")
        handler(message, payload)

    def _on_shutdown(self, message: dict, payload: bytes) -> None:
        self._running = False

    def _on_put_file(self, message: dict, payload: bytes) -> None:
        digest = message["hash"]
        self.cache.insert_bytes(digest, payload)
        self._send({"type": "cache_update", "hash": digest, "present": True})

    def _on_transfer(self, message: dict, payload: bytes) -> None:
        """Fetch a file from a peer worker (synchronous; peers serve from a thread)."""
        digest = message["hash"]
        if digest in self.cache:
            self._send({"type": "cache_update", "hash": digest, "present": True})
            return
        try:
            peer = messages.connect(message["host"], int(message["port"]), name="peer")
            try:
                peer.send({"type": "get", "hash": digest})
                reply, data = peer.receive(timeout=60.0)
            finally:
                peer.close()
            if not reply.get("ok"):
                raise EngineError(reply.get("error", "peer refused"))
            self.cache.insert_bytes(digest, data)
            self._send({"type": "cache_update", "hash": digest, "present": True})
        except Exception as exc:
            self._send(
                {
                    "type": "cache_update",
                    "hash": digest,
                    "present": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )

    def _on_unlink(self, message: dict, payload: bytes) -> None:
        try:
            self.cache.remove(message["hash"])
        except CacheError:
            pass
        self._send({"type": "cache_update", "hash": message["hash"], "present": False})

    def _ensure_environment(self, env_hash: Optional[str]) -> tuple[Optional[str], float]:
        """Unpack a cached environment package once; return (dir, seconds_spent)."""
        if not env_hash:
            return None, 0.0
        dir_key = f"{env_hash}.unpacked"
        env_dir = os.path.join(self.env_root, env_hash)
        if dir_key in self.cache:
            self.cache.probe(dir_key)
            return env_dir, 0.0
        started = time.monotonic()
        package_path = self.cache.path_of(env_hash)
        unpack_environment(package_path, env_dir)
        size = sum(
            os.path.getsize(os.path.join(dp, f))
            for dp, _, fns in os.walk(env_dir)
            for f in fns
        )
        self.cache.register_dir(dir_key, env_dir, size)
        return env_dir, time.monotonic() - started

    def _stage_inputs(self, sandbox: Sandbox, inputs: List[dict]) -> float:
        started = time.monotonic()
        for item in inputs:
            sandbox.stage(self.cache.path_of(item["hash"]), item["name"])
        return time.monotonic() - started

    def _on_task(self, message: dict, payload: bytes) -> None:
        task_id = int(message["task_id"])
        sandbox = Sandbox(self.sandbox_root, f"task-{task_id}-{uuid.uuid4().hex[:6]}")
        try:
            env_dir, env_time = self._ensure_environment(message.get("env_hash"))
            staging = self._stage_inputs(sandbox, message.get("inputs", []))
            code_size = int(message.get("code_size", 0))
            if code_size:
                # Split wire format: the memoized code blob leads the
                # payload; args follow inline or ride in shared memory.
                sandbox.write(CODE_FILE, payload[:code_size])
                descriptor = message.get("args_shm")
                if descriptor is not None:
                    args_blob = payloads.fetch(descriptor)  # store-owned; no unlink
                    self.payload_mapped += len(args_blob)
                else:
                    args_blob = payload[code_size:]
                    self.payload_copied += len(args_blob)
                sandbox.write(ARGS_FILE, args_blob)
            else:  # legacy combined blob
                sandbox.write(ARGS_FILE, payload)
            cmd = [sys.executable, "-m", "repro.engine.task_runner", sandbox.path]
            if env_dir:
                cmd.append(env_dir)
            proc = subprocess.Popen(
                cmd,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                cwd=sandbox.path,
                env=_child_env(),
            )
        except Exception as exc:
            sandbox.destroy()
            self._send(
                {
                    "type": "task_failed",
                    "task_id": task_id,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
            return
        timeout = message.get("timeout")
        started = time.monotonic()
        self.tasks[task_id] = _RunningTask(
            task_id,
            proc,
            sandbox,
            staging,
            env_time,
            started,
            timeout=timeout,
            deadline=started + timeout if timeout else None,
        )
        self.tracer.record(
            "stage_done",
            task_id=str(task_id),
            kind="task",
            seconds=staging,
            env_seconds=env_time,
        )

    def _on_library(self, message: dict, payload: bytes) -> None:
        instance_id = int(message["instance_id"])
        started = time.monotonic()
        sandbox_dir = os.path.join(self.workdir, "libraries", f"inst-{instance_id}")
        try:
            os.makedirs(sandbox_dir)
            env_dir, _ = self._ensure_environment(message.get("env_hash"))
            for item in message.get("inputs", []):
                dest = os.path.join(sandbox_dir, item["name"])
                try:
                    os.link(self.cache.path_of(item["hash"]), dest)
                except OSError:
                    shutil.copyfile(self.cache.path_of(item["hash"]), dest)
            spec_path = os.path.join(sandbox_dir, message["spec_name"])
            socket_path = self._library_socket_path(instance_id)
            if os.path.exists(socket_path):
                os.unlink(socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(socket_path)
            listener.listen(1)
            listener.setblocking(False)
            cmd = [
                sys.executable,
                "-m",
                "repro.engine.library_main",
                "--spec",
                spec_path,
                "--socket",
                socket_path,
                "--sandbox",
                sandbox_dir,
                "--instance-id",
                str(instance_id),
            ]
            if env_dir:
                cmd.extend(["--env-dir", env_dir])
            proc = subprocess.Popen(
                cmd,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                env=_child_env(),
            )
        except Exception as exc:
            shutil.rmtree(sandbox_dir, ignore_errors=True)
            self._send(
                {
                    "type": "library_failed",
                    "instance_id": instance_id,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
            return
        self.log.debug("starting library instance %d (%s)", instance_id, message["library_name"])
        handle = _LibraryHandle(
            instance_id=instance_id,
            library_name=message["library_name"],
            sandbox_dir=sandbox_dir,
            socket_path=socket_path,
            listener=listener,
            proc=proc,
            worker_overhead=time.monotonic() - started,
        )
        self.libraries[instance_id] = handle
        self.selector.register(listener, selectors.EVENT_READ, ("lib-listener", handle))
        self.tracer.record(
            "library_spawn",
            library=handle.library_name,
            instance=instance_id,
            seconds=handle.worker_overhead,
        )

    def _library_socket_path(self, instance_id: int) -> str:
        path = os.path.join(self.socket_root, f"lib-{instance_id}.sock")
        if len(path.encode()) <= 100:
            return path
        if self._socket_fallback is None:
            import tempfile

            self._socket_fallback = tempfile.mkdtemp(prefix="repro-sock-")
        return os.path.join(self._socket_fallback, f"lib-{instance_id}.sock")

    def _accept_library(self, handle: _LibraryHandle) -> None:
        try:
            client, _ = handle.listener.accept()
        except BlockingIOError:
            return
        client.setblocking(True)
        handle.conn = messages.Connection(client, name=f"library-{handle.instance_id}")
        self.selector.unregister(handle.listener)
        handle.listener.close()
        self.selector.register(client, selectors.EVENT_READ, ("lib-conn", handle))

    def _on_invocation(self, message: dict, payload: bytes) -> None:
        task_id = int(message["task_id"])
        instance_id = int(message["instance_id"])
        handle = self.libraries.get(instance_id)
        if handle is None:
            # The instance died (timeout kill, crash) while this dispatch
            # was in flight; hand the invocation back for a retry rather
            # than failing it — the retry budget bounds the loop.
            self._send(
                {
                    "type": "task_failed",
                    "task_id": task_id,
                    "kind": "requeue",
                    "error": f"no library instance {instance_id} on this worker",
                }
            )
            return
        staging_started = time.monotonic()
        mode = message.get("mode", "direct")
        inputs = message.get("inputs", [])
        descriptor = message.get("args_shm")
        # A sandbox exists only when the invocation actually needs the
        # filesystem: staged input files, or fork mode (whose child
        # reads/writes the classic args/result files).  The common
        # direct-mode no-inputs invocation skips mkdir/rmtree entirely
        # and its arguments travel on the invoke frame or in shm.
        sandbox: Optional[Sandbox] = None
        if inputs or mode == "fork":
            sandbox = Sandbox(
                self.sandbox_root, f"invoc-{task_id}-{uuid.uuid4().hex[:6]}"
            )
            for item in inputs:
                sandbox.stage(self.cache.path_of(item["hash"]), item["name"])
        lib_payload: bytes = b""
        if mode == "fork":
            if descriptor is not None:
                args_blob = payloads.fetch(descriptor)  # store-owned; no unlink
                self.payload_mapped += len(args_blob)
            else:
                args_blob = payload
                self.payload_copied += len(args_blob)
            sandbox.write(ARGS_FILE, args_blob)
        handle.invocations[task_id] = sandbox
        handle.staging[task_id] = time.monotonic() - staging_started
        if sandbox is not None:
            self.tracer.record(
                "stage_done",
                task_id=str(task_id),
                kind="invocation",
                seconds=handle.staging[task_id],
            )
        timeout = message.get("timeout")
        frame = {
            "type": "invoke",
            "task_id": task_id,
            "function": message["function"],
            "mode": mode,
        }
        if sandbox is not None:
            frame["sandbox"] = sandbox.path
        if mode != "fork":
            if descriptor is not None:
                # Library and worker always share a host: hand the
                # descriptor through untouched (zero bytes moved here).
                frame["args_shm"] = descriptor
                self.payload_mapped += int(descriptor.get("size", 0))
            else:
                lib_payload = payload
                self.payload_copied += len(payload)
        if timeout:
            # Direct-mode work shares the library process, so the worker
            # enforces the deadline by killing the instance; fork-mode
            # children are killed by the library itself, which needs the
            # timeout forwarded.
            if mode == "fork":
                frame["timeout"] = timeout
            else:
                handle.deadlines[task_id] = (time.monotonic() + timeout, timeout)
        if handle.ready and handle.conn is not None:
            handle.conn.send(frame, lib_payload)
        else:
            handle.pending.append((frame, lib_payload))

    def _on_invocation_batch(self, message: dict, payload: bytes) -> None:
        """Fan a coalesced dispatch round back out to library instances.

        The payload is the concatenation of each invocation's argument
        blob, length-prefixed (4-byte big-endian), in header order.
        """
        view = memoryview(payload)
        offset = 0
        for header in message.get("invocations", []):
            length = int.from_bytes(view[offset:offset + 4], "big")
            offset += 4
            self._on_invocation(header, bytes(view[offset:offset + length]))
            offset += length

    def _on_cancel(self, message: dict, payload: bytes) -> None:
        """Kill a running task subprocess at the manager's request."""
        task_id = int(message["task_id"])
        running = self.tasks.pop(task_id, None)
        if running is None:
            return  # already finished; the result message races the cancel
        if running.proc.poll() is None:
            running.proc.terminate()
            try:
                running.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                running.proc.kill()
        running.sandbox.destroy()
        self._send(
            {
                "type": "task_failed",
                "task_id": task_id,
                "error": "cancelled by the manager",
            }
        )

    def _on_remove_library(self, message: dict, payload: bytes) -> None:
        instance_id = int(message["instance_id"])
        handle = self.libraries.get(instance_id)
        if handle is not None:
            self._terminate_library(handle)
        self._send({"type": "library_removed", "instance_id": instance_id})

    # -- library events -----------------------------------------------------------
    def _handle_library_message(self, handle: _LibraryHandle) -> None:
        assert handle.conn is not None
        try:
            message, payload = handle.conn.receive(timeout=5.0)
        except (ProtocolError, TimeoutError):
            self._library_died(handle)
            return
        # Relay library-side trace events: absorb() on a forwarding
        # tracer re-queues them, so the next manager-bound frame (often
        # the result this message triggers) carries them upstream.
        piggyback = message.get(messages.TRACE_KEY)
        if piggyback:
            self.tracer.absorb(piggyback)
        mtype = message.get("type")
        if mtype == "ready":
            handle.ready = True
            self._send(
                {
                    "type": "library_ready",
                    "instance_id": handle.instance_id,
                    "times": {
                        "worker_overhead": handle.worker_overhead,
                        "library_overhead": float(message.get("setup_time", 0.0)),
                    },
                }
            )
            for frame, lib_payload in handle.pending:
                handle.conn.send_buffered(frame, lib_payload)
            if handle.pending:
                handle.conn.flush()
            handle.pending.clear()
        elif mtype == "startup_failed":
            self._send(
                {
                    "type": "library_failed",
                    "instance_id": handle.instance_id,
                    "error": message.get("error", "library startup failed"),
                    "traceback": message.get("traceback"),
                }
            )
            self._terminate_library(handle)
        elif mtype == "complete":
            self._finish_invocation(handle, message, payload)
        elif mtype == "bye":
            pass
        else:
            raise ProtocolError(f"unexpected library message {mtype!r}")

    def _relay_result(
        self,
        task_id: int,
        kind: str,
        times: Dict[str, Any],
        data: bytes = b"",
        descriptor: Optional[dict] = None,
    ) -> None:
        """Forward one outcome to the manager, by descriptor when possible.

        A shm-borne result from a library is handed to a shm-capable
        manager as its descriptor (zero result bytes on either socket
        hop); otherwise the bytes are materialized and shipped inline.
        Large inline results are promoted into a one-shot segment when
        the manager can attach it — the result then crosses the
        manager link as a ~100-byte descriptor no matter its size.
        """
        frame = {"type": "result", "task_id": task_id, "kind": kind, "times": times}
        if descriptor is not None and not self.shm_to_manager:
            try:
                data = payloads.fetch(descriptor, consume=True)
                descriptor = None
            except payloads.PayloadError as exc:
                self._send(
                    {
                        "type": "task_failed",
                        "task_id": task_id,
                        "error": f"result segment lost: {exc}",
                    }
                )
                return
        if (
            descriptor is None
            and data
            and self.shm_to_manager
            and len(data) >= payloads.threshold_bytes()
        ):
            try:
                descriptor = payloads.publish_once(bytes(data))
                data = b""
            except payloads.PayloadError:
                pass  # ship inline after all
        if descriptor is not None:
            frame["payload_shm"] = descriptor
            self.payload_mapped += int(descriptor.get("size", 0))
        else:
            self.payload_copied += len(data)
        self._send(frame, data)

    def _finish_invocation(
        self, handle: _LibraryHandle, message: dict, payload: bytes = b""
    ) -> None:
        task_id = int(message["task_id"])
        if task_id not in handle.invocations:
            return
        sandbox = handle.invocations.pop(task_id)
        handle.deadlines.pop(task_id, None)
        times = dict(message.get("times", {}))
        times["staging"] = handle.staging.pop(task_id, 0.0)
        times["worker_overhead"] = 0.0  # context was already resident
        descriptor = message.get("payload_shm")
        if message.get("kind") != "timeout" and (descriptor is not None or payload):
            # Direct mode: the outcome rode the complete frame (or shm).
            self._relay_result(
                task_id, "invocation", times, data=payload, descriptor=descriptor
            )
        elif (
            message.get("kind") != "timeout"
            and sandbox is not None
            and sandbox.exists(RESULT_FILE)
        ):
            # Fork mode: the child wrote the classic result file.
            self._relay_result(
                task_id, "invocation", times, data=sandbox.read(RESULT_FILE)
            )
        else:
            failure = {
                "type": "task_failed",
                "task_id": task_id,
                "error": message.get("error", "invocation produced no result"),
                "traceback": message.get("traceback"),
            }
            if message.get("kind") == "timeout":  # fork-mode child overran
                failure["kind"] = "timeout"
            self._send(failure)
        if sandbox is not None:
            sandbox.destroy()

    def _check_invocation_timeouts(self) -> None:
        """Enforce direct-mode wall-clock deadlines.

        Direct execution shares the library process, so the only way to
        stop an overrunning invocation is to kill the whole instance.
        The victim is reported as a timeout; sibling invocations staged
        on the same instance are innocent, so the manager is asked to
        requeue (not fail) them; finally the instance itself is reported
        failed with a ``timeout`` kind so the manager does not poison
        the library's queue.
        """
        now = time.monotonic()
        for handle in list(self.libraries.values()):
            if not handle.deadlines:
                continue
            victim = next(
                (
                    tid
                    for tid, (deadline, _) in handle.deadlines.items()
                    if now > deadline
                ),
                None,
            )
            if victim is not None:
                self._kill_timed_out(handle, victim)

    def _kill_timed_out(self, handle: _LibraryHandle, task_id: int) -> None:
        _, timeout = handle.deadlines.pop(task_id)
        self.log.warning(
            "invocation %d exceeded its %.1fs timeout; killing library %d",
            task_id, timeout, handle.instance_id,
        )
        self.tracer.record(
            "task_timeout", task_id=str(task_id), timeout=timeout
        )
        self.tracer.record(
            "task_kill",
            task_id=str(task_id),
            library=handle.library_name,
            instance=handle.instance_id,
        )
        if handle.proc.poll() is None:
            handle.proc.kill()
        sandbox = handle.invocations.pop(task_id, None)
        handle.staging.pop(task_id, None)
        self._send(
            {
                "type": "task_failed",
                "task_id": task_id,
                "kind": "timeout",
                "error": (
                    f"invocation exceeded its {timeout}s wall-clock timeout; "
                    "library instance killed"
                ),
            }
        )
        if sandbox is not None:
            sandbox.destroy()
        for sibling in list(handle.invocations):
            handle.deadlines.pop(sibling, None)
            handle.staging.pop(sibling, None)
            self._send(
                {
                    "type": "task_failed",
                    "task_id": sibling,
                    "kind": "requeue",
                    "error": "library instance killed (sibling invocation timed out)",
                }
            )
            sibling_sandbox = handle.invocations.pop(sibling)
            if sibling_sandbox is not None:
                sibling_sandbox.destroy()
        self._send(
            {
                "type": "library_failed",
                "instance_id": handle.instance_id,
                "kind": "timeout",
                "error": "library killed after an invocation timeout",
            }
        )
        self._terminate_library(handle)

    def _library_died(self, handle: _LibraryHandle) -> None:
        stderr = b""
        if handle.proc.poll() is not None and handle.proc.stderr is not None:
            stderr = handle.proc.stderr.read() or b""
        for task_id in list(handle.invocations):
            self._send(
                {
                    "type": "task_failed",
                    "task_id": task_id,
                    "error": "library process died",
                    "traceback": stderr.decode("utf-8", "replace")[-4000:],
                }
            )
            dead_sandbox = handle.invocations.pop(task_id)
            if dead_sandbox is not None:
                dead_sandbox.destroy()
        self._send(
            {
                "type": "library_failed",
                "instance_id": handle.instance_id,
                "error": "library process died",
                "traceback": stderr.decode("utf-8", "replace")[-4000:],
            }
        )
        self._terminate_library(handle)

    def _terminate_library(self, handle: _LibraryHandle) -> None:
        if handle.conn is not None:
            try:
                self.selector.unregister(handle.conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                handle.conn.send({"type": "shutdown"})
            except ProtocolError:
                pass
            handle.conn.close()
        else:
            try:
                self.selector.unregister(handle.listener)
            except (KeyError, ValueError):
                pass
            handle.listener.close()
        if handle.proc.poll() is None:
            handle.proc.terminate()
            try:
                handle.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                handle.proc.kill()
        if os.path.exists(handle.socket_path):
            try:
                os.unlink(handle.socket_path)
            except OSError:
                pass
        for sandbox in handle.invocations.values():
            if sandbox is not None:
                sandbox.destroy()
        shutil.rmtree(handle.sandbox_dir, ignore_errors=True)
        self.libraries.pop(handle.instance_id, None)

    # -- task subprocess completion ---------------------------------------------
    def _poll_tasks(self) -> None:
        for task_id in list(self.tasks):
            running = self.tasks[task_id]
            code = running.proc.poll()
            if code is None:
                if (
                    running.deadline is not None
                    and time.monotonic() > running.deadline
                ):
                    self._kill_timed_out_task(running)
                continue
            del self.tasks[task_id]
            times: Dict[str, Any] = {
                "staging": running.staging_time,
                "worker_overhead": running.env_time,
                "wall": time.monotonic() - running.started,
            }
            if code == 0 and running.sandbox.exists(RESULT_FILE):
                self._relay_result(
                    task_id, "task", times, data=running.sandbox.read(RESULT_FILE)
                )
            else:
                stderr = b""
                if running.proc.stderr is not None:
                    stderr = running.proc.stderr.read() or b""
                self._send(
                    {
                        "type": "task_failed",
                        "task_id": task_id,
                        "error": f"task runner exited with code {code}",
                        "traceback": stderr.decode("utf-8", "replace")[-4000:],
                    }
                )
            running.sandbox.destroy()

    def _kill_timed_out_task(self, running: _RunningTask) -> None:
        """A plain task runs in its own subprocess — kill just that."""
        self.log.warning(
            "task %d exceeded its %.1fs timeout; killing its runner",
            running.task_id, running.timeout,
        )
        self.tracer.record(
            "task_timeout", task_id=str(running.task_id), timeout=running.timeout
        )
        running.proc.kill()
        try:
            running.proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            pass
        del self.tasks[running.task_id]
        self._send(
            {
                "type": "task_failed",
                "task_id": running.task_id,
                "kind": "timeout",
                "error": (
                    f"task exceeded its {running.timeout}s wall-clock timeout"
                ),
            }
        )
        running.sandbox.destroy()
