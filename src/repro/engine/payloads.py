"""Zero-copy payload plane: a shared-memory content-addressed store.

The control plane (``messages.py``) ships small JSON frames; bulk
argument/result payloads historically rode behind those frames as raw
socket bytes, copied at every hop (manager → worker → library).  This
module moves large payloads out of the socket path entirely: a payload
above :func:`threshold_bytes` is written once into a
``multiprocessing.shared_memory`` segment and travels as a *descriptor*
``{"shm": name, "hash": sha256, "size": n}``.  The receiver attaches the
segment lazily and deserializes straight out of the mapping — bytes
copied per hop is then flat in payload size.

Two ownership protocols cover every flow in the engine:

* **Store-owned segments** (:class:`PayloadStore`) — created by
  ``put``, content-addressed with the same SHA-256 hex scheme as
  :class:`~repro.engine.cache.WorkerCache`, refcount-pinnable, and
  evicted LRU within a byte budget.  The owner (the manager) unlinks on
  eviction or ``close``; consumers only ever attach and close.  A
  repeated argument blob hashes to the same digest, so re-shipping it
  costs one descriptor, not one copy.
* **One-shot segments** (:func:`publish_once`) — created for a single
  result in flight; the *consumer* unlinks after reading
  (``fetch(..., consume=True)``).  No release round-trip is needed.

Segment names embed the creating pid (``repro-pl-<pid>-<hash24>``), so
:func:`reap_orphans` can reclaim segments whose owner died without
cleanup (a SIGKILLed worker or library) by scanning ``/dev/shm``.

Fallback: when shared memory is unavailable (platform, ``REPRO_SHM=0``)
or the peer lives on a different host (see :func:`host_token`), callers
keep shipping inline bytes — the descriptor path is an optimization,
never a requirement.

Environment knobs:

* ``REPRO_SHM`` — set to ``0`` to disable the payload plane entirely.
* ``REPRO_SHM_THRESHOLD`` — minimum payload size in bytes that rides in
  shared memory (default 32 KiB).
* ``REPRO_SHM_BUDGET`` — byte budget of a :class:`PayloadStore`'s LRU
  (default 256 MiB).
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

_publish_seq = itertools.count()

from repro.errors import EngineError
from repro.util.hashing import hash_bytes

SHM_PREFIX = "repro-pl-"
_DEFAULT_THRESHOLD = 32 * 1024
_DEFAULT_BUDGET = 256 * 1024 * 1024

try:  # pragma: no cover - import availability depends on the platform
    from multiprocessing import shared_memory as _shared_memory
except Exception:  # pragma: no cover
    _shared_memory = None


class PayloadError(EngineError):
    """A shared-memory payload operation failed."""


def enabled() -> bool:
    """True when the payload plane may be used in this process."""
    if _shared_memory is None:
        return False
    return os.environ.get("REPRO_SHM", "") not in ("0", "off", "no")


def threshold_bytes() -> int:
    """Minimum payload size that ships via shared memory."""
    try:
        return int(os.environ.get("REPRO_SHM_THRESHOLD", _DEFAULT_THRESHOLD))
    except ValueError:
        return _DEFAULT_THRESHOLD


def budget_bytes() -> int:
    try:
        return int(os.environ.get("REPRO_SHM_BUDGET", _DEFAULT_BUDGET))
    except ValueError:
        return _DEFAULT_BUDGET


def host_token() -> str:
    """An identity for "same shared-memory domain" negotiation.

    A worker includes this in its ``register`` frame and the manager in
    its ``welcome``; descriptors are only exchanged when the tokens
    match (same machine, same boot).
    """
    boot = ""
    try:
        with open("/proc/sys/kernel/random/boot_id") as fh:
            boot = fh.read().strip()
    except OSError:
        pass
    return f"{os.uname().nodename}:{boot}"


def _untracked(shm):
    """Detach a segment from multiprocessing's resource tracker.

    Before Python 3.13 every ``SharedMemory`` object — even a pure
    attach — registers with the per-process resource tracker, which
    unlinks the segment when *any* attaching process exits.  Ownership
    here is explicit (store/one-shot protocols above), so the tracker
    must not interfere.
    """
    try:  # pragma: no cover - depends on interpreter version
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


def _unlink_segment(shm) -> None:
    """Unlink a segment without touching the resource tracker.

    Before 3.13, ``SharedMemory.unlink`` unconditionally *unregisters*
    the name — but :func:`_untracked` already did, so the tracker
    process would log a ``KeyError`` for every segment at exit.  Going
    through ``_posixshmem`` directly sidesteps the double unregister.
    """
    try:  # pragma: no cover - depends on interpreter internals
        import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except ImportError:  # pragma: no cover
        shm.unlink()
    except FileNotFoundError:
        pass


def _create_segment(name: str, size: int):
    try:
        shm = _shared_memory.SharedMemory(name=name, create=True, size=size, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        shm = _untracked(_shared_memory.SharedMemory(name=name, create=True, size=size))
    return shm


def _attach_segment(name: str):
    try:
        shm = _shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:
        shm = _untracked(_shared_memory.SharedMemory(name=name, create=False))
    return shm


def segment_name(digest: str, pid: Optional[int] = None) -> str:
    """Shared-memory name for ``digest`` owned by ``pid``.

    The pid makes ownership recoverable: :func:`reap_orphans` unlinks
    segments whose owner is gone.  Content addressing therefore holds
    *per owner* — the descriptor always carries the explicit name.
    """
    return f"{SHM_PREFIX}{pid if pid is not None else os.getpid()}-{digest[:24]}"


def owner_pid(name: str) -> Optional[int]:
    """Owning pid parsed back out of a segment name (None if foreign)."""
    if not name.startswith(SHM_PREFIX):
        return None
    rest = name[len(SHM_PREFIX):]
    pid_part, _, _ = rest.partition("-")
    try:
        return int(pid_part)
    except ValueError:
        return None


def make_descriptor(name: str, digest: str, size: int) -> Dict[str, Any]:
    return {"shm": name, "hash": digest, "size": size}


def is_descriptor(obj: Any) -> bool:
    return isinstance(obj, dict) and "shm" in obj and "size" in obj


class MappedPayload:
    """A read-only view of a payload attached from shared memory.

    ``view`` is an exact-size memoryview into the mapping (segment sizes
    round up to page granularity, so the descriptor's ``size`` is
    authoritative).  ``close`` detaches; ``consume=True`` additionally
    unlinks — the one-shot consumer protocol.
    """

    def __init__(self, shm, size: int):
        self._shm = shm
        self.view = memoryview(shm.buf)[:size]

    def bytes(self) -> bytes:
        return bytes(self.view)

    def close(self, *, consume: bool = False) -> None:
        if self._shm is None:
            return
        self.view.release()
        if consume:
            _unlink_segment(self._shm)
        self._shm.close()
        self._shm = None

    def __enter__(self) -> "MappedPayload":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def attach(descriptor: Dict[str, Any]) -> MappedPayload:
    """Attach a descriptor's segment for reading (no copy)."""
    if _shared_memory is None:
        raise PayloadError("shared memory is unavailable in this process")
    try:
        shm = _attach_segment(str(descriptor["shm"]))
    except (OSError, ValueError) as exc:
        raise PayloadError(
            f"cannot attach payload segment {descriptor.get('shm')!r}: {exc}"
        ) from exc
    return MappedPayload(shm, int(descriptor["size"]))


def fetch(descriptor: Dict[str, Any], *, consume: bool = False) -> bytes:
    """Copy a descriptor's payload out of shared memory.

    ``consume=True`` unlinks the segment afterwards (one-shot consumer).
    Prefer :func:`attach` on hot paths — it hands back a zero-copy view.
    """
    mapped = attach(descriptor)
    try:
        return mapped.bytes()
    finally:
        mapped.close(consume=consume)


def publish_once(data: bytes) -> Dict[str, Any]:
    """Write ``data`` into a fresh one-shot segment; returns its descriptor.

    The creating process keeps no handle: the consumer unlinks via
    ``fetch(descriptor, consume=True)``.  If the consumer never reads it
    (a lost connection), :func:`reap_orphans` reclaims the segment once
    this process exits.
    """
    if _shared_memory is None or not enabled():
        raise PayloadError("payload plane is disabled")
    digest = hash_bytes(data)
    # One-shot names are unique per call (not content-addressed): two
    # identical results in flight must not share a segment, because the
    # first consumer unlinks it out from under the second descriptor.
    name = f"{SHM_PREFIX}{os.getpid()}-{digest[:16]}.{next(_publish_seq)}"
    size = max(1, len(data))
    try:
        shm = _create_segment(name, size)
    except (OSError, ValueError) as exc:
        raise PayloadError(f"cannot create payload segment: {exc}") from exc
    shm.buf[: len(data)] = data
    shm.close()
    return make_descriptor(name, digest, len(data))


@dataclass
class _StoreEntry:
    digest: str
    size: int
    shm: Any
    pins: int = 0


class PayloadStore:
    """Content-addressed, refcount-pinned, LRU-budgeted segment store.

    The single long-lived owner of argument payloads (the manager).
    ``put`` deduplicates by content hash; ``pin``/``unpin`` protect
    in-flight payloads from eviction; unpinned entries are evicted
    least-recently-used when an insert would exceed the byte budget.
    ``close`` unlinks everything this store created.
    """

    def __init__(
        self,
        *,
        budget: Optional[int] = None,
        registry=None,
    ):
        if _shared_memory is None or not enabled():
            raise PayloadError("payload plane is disabled")
        self.budget = budget_bytes() if budget is None else budget
        self._entries: "OrderedDict[str, _StoreEntry]" = OrderedDict()
        self._used = 0
        self._pinned = 0
        if registry is not None:
            self._stored_gauge = registry.gauge("payload.shm_bytes")
            self._evictions = registry.counter("payload.shm_evictions")
        else:
            self._stored_gauge = None
            self._evictions = None

    # -- queries ---------------------------------------------------------
    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def used_bytes(self) -> int:
        return self._used

    def descriptor(self, digest: str) -> Dict[str, Any]:
        entry = self._entries[digest]
        self._entries.move_to_end(digest)
        return make_descriptor(entry.shm.name, digest, entry.size)

    def get(self, digest: str) -> bytes:
        """The stored payload bytes (a copy; tests and fallbacks only)."""
        entry = self._entries.get(digest)
        if entry is None:
            raise PayloadError(f"no payload {digest[:12]} in store")
        self._entries.move_to_end(digest)
        return bytes(memoryview(entry.shm.buf)[: entry.size])

    # -- mutation --------------------------------------------------------
    def _unlink_entry(self, entry: _StoreEntry) -> None:
        _unlink_segment(entry.shm)
        entry.shm.close()

    def _evict_for(self, incoming: int) -> None:
        while (
            self._used + incoming > self.budget
            and self._pinned < len(self._entries)
        ):
            victim = next(
                (d for d, e in self._entries.items() if e.pins == 0), None
            )
            if victim is None:
                break
            entry = self._entries.pop(victim)
            self._used -= entry.size
            self._unlink_entry(entry)
            if self._evictions is not None:
                self._evictions.inc()
        # When everything left is pinned the store runs over budget
        # rather than failing a dispatch: pins are short-lived.

    def put(self, data: bytes) -> Dict[str, Any]:
        """Store ``data`` (content-addressed); returns its descriptor.

        Storing bytes already present is free and returns the existing
        descriptor — this is the reuse the whole plane exists for.
        """
        digest = hash_bytes(data)
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            return make_descriptor(entry.shm.name, digest, entry.size)
        self._evict_for(len(data))
        name = segment_name(digest)
        size = max(1, len(data))
        try:
            shm = _create_segment(name, size)
        except FileExistsError:
            # Stale segment from a previous same-pid incarnation (pid
            # reuse): replace it.
            try:
                stale = _attach_segment(name)
                _unlink_segment(stale)
                stale.close()
            except (OSError, ValueError):
                pass
            shm = _create_segment(name, size)
        except OSError as exc:
            raise PayloadError(f"cannot create payload segment: {exc}") from exc
        shm.buf[: len(data)] = data
        self._entries[digest] = _StoreEntry(digest, len(data), shm)
        self._used += len(data)
        if self._stored_gauge is not None:
            self._stored_gauge.set(self._used)
        return make_descriptor(name, digest, len(data))

    def pin(self, digest: str) -> None:
        entry = self._entries.get(digest)
        if entry is None:
            raise PayloadError(f"cannot pin missing payload {digest[:12]}")
        if entry.pins == 0:
            self._pinned += 1
        entry.pins += 1

    def unpin(self, digest: str) -> None:
        entry = self._entries.get(digest)
        if entry is None:
            return  # already evicted after its last unpin; nothing to do
        if entry.pins <= 0:
            raise PayloadError(f"payload {digest[:12]} is not pinned")
        entry.pins -= 1
        if entry.pins == 0:
            self._pinned -= 1

    def remove(self, digest: str) -> None:
        entry = self._entries.get(digest)
        if entry is None:
            return
        if entry.pins > 0:
            raise PayloadError(f"payload {digest[:12]} is pinned; cannot remove")
        del self._entries[digest]
        self._used -= entry.size
        self._unlink_entry(entry)
        if self._stored_gauge is not None:
            self._stored_gauge.set(self._used)

    def close(self) -> None:
        for entry in self._entries.values():
            self._unlink_entry(entry)
        self._entries.clear()
        self._used = 0
        self._pinned = 0
        if self._stored_gauge is not None:
            self._stored_gauge.set(0)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self._used,
            "pinned": self._pinned,
            "budget": self.budget,
        }

    def __enter__(self) -> "PayloadStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def open_store(registry=None, budget: Optional[int] = None) -> Optional[PayloadStore]:
    """A :class:`PayloadStore` when the plane is usable, else ``None``.

    The ``None`` return is the graceful-fallback signal: callers that
    get it simply keep shipping inline bytes.
    """
    if not enabled():
        return None
    try:
        return PayloadStore(registry=registry, budget=budget)
    except PayloadError:
        return None


# --------------------------------------------------------------- orphan reaping
def _shm_dir() -> Optional[str]:
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def list_segments() -> list[str]:
    """Names of every live repro payload segment on this machine."""
    root = _shm_dir()
    if root is None:
        return []
    try:
        return sorted(n for n in os.listdir(root) if n.startswith(SHM_PREFIX))
    except OSError:
        return []


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def reap_orphans() -> int:
    """Unlink payload segments whose owning process is dead.

    A SIGKILLed worker or library cannot run its cleanup; its segments
    are identifiable by the pid embedded in their names.  Returns how
    many segments were reclaimed.  Safe to call from any process.
    """
    root = _shm_dir()
    if root is None:
        return 0
    reaped = 0
    for name in list_segments():
        pid = owner_pid(name)
        if pid is None or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(root, name))
            reaped += 1
        except OSError:
            pass
    return reaped


# ----------------------------------------------------- declared-argument plane
class PayloadArg:
    """A reusable argument declared once and referenced by many calls.

    Created by ``Manager.declare_argument``: the value is serialized
    once into the manager's :class:`PayloadStore` and every invocation
    naming it ships this ~100-byte placeholder instead of the bytes.
    Receivers resolve placeholders via :func:`resolve_args`, caching the
    *deserialized* value per digest — so a warm library pays neither the
    copy nor the unpickle for a repeated argument.
    """

    __slots__ = ("digest", "size", "shm")

    def __init__(self, digest: str, size: int, shm: Optional[str]):
        self.digest = digest
        self.size = size
        self.shm = shm

    def __getstate__(self) -> Tuple[str, int, Optional[str]]:
        return (self.digest, self.size, self.shm)

    def __setstate__(self, state: Tuple[str, int, Optional[str]]) -> None:
        self.digest, self.size, self.shm = state

    def descriptor(self) -> Dict[str, Any]:
        if self.shm is None:
            raise PayloadError(f"argument {self.digest[:12]} has no segment")
        return make_descriptor(self.shm, self.digest, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PayloadArg({self.digest[:12]}, {self.size}B)"


class ResolvedArgCache:
    """Per-process LRU of deserialized :class:`PayloadArg` values."""

    def __init__(self, limit: int = 32):
        self.limit = max(1, limit)
        self._values: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def resolve(self, arg: PayloadArg, loader: Callable[[bytes], Any]) -> Any:
        cached = self._values.get(arg.digest)
        if arg.digest in self._values:
            self._values.move_to_end(arg.digest)
            self.hits += 1
            return cached
        self.misses += 1
        mapped = attach(arg.descriptor())
        try:
            value = loader(mapped.view)
        finally:
            mapped.close()
        self._values[arg.digest] = value
        while len(self._values) > self.limit:
            self._values.popitem(last=False)
        return value


def substitute_args(
    args,
    kwargs,
    lookup: Callable[[str], Any],
    when: Optional[Callable[["PayloadArg"], bool]] = None,
):
    """Replace top-level :class:`PayloadArg` placeholders with real values.

    The manager uses this on links without shared memory: the argument
    is embedded inline (the pre-payload-plane wire shape), trading the
    zero-copy win for portability.  ``when`` narrows the substitution —
    on shm-capable links the manager passes ``lambda a: a.shm is None``
    so only *unbacked* placeholders (below-threshold declared arguments
    that were never given a segment) are inlined while backed ones still
    ride the store.  Only top-level positional/keyword arguments are
    scanned — a PayloadArg nested inside a container needs a shm-capable
    link.
    """
    def hits(value) -> bool:
        return isinstance(value, PayloadArg) and (when is None or when(value))

    if not any(hits(a) for a in args) and not any(
        hits(v) for v in kwargs.values()
    ):
        return args, kwargs
    new_args = tuple(lookup(a.digest) if hits(a) else a for a in args)
    new_kwargs = {
        k: lookup(v.digest) if hits(v) else v for k, v in kwargs.items()
    }
    return new_args, new_kwargs


def resolve_args(args, kwargs, cache: ResolvedArgCache, loader):
    """Resolve placeholders receiver-side (library / task runner)."""
    if not any(isinstance(a, PayloadArg) for a in args) and not any(
        isinstance(v, PayloadArg) for v in kwargs.values()
    ):
        return args, kwargs
    new_args = tuple(
        cache.resolve(a, loader) if isinstance(a, PayloadArg) else a
        for a in args
    )
    new_kwargs = {
        k: cache.resolve(v, loader) if isinstance(v, PayloadArg) else v
        for k, v in kwargs.items()
    }
    return new_args, new_kwargs
