"""Sim-scale sharding: consistent-hash partition of a workload over shards.

The real router (:mod:`repro.engine.router`) proves the sharding design
at two shards on one machine; this module proves it at the paper's
cluster scale — 1000+ simulated workers across four or more shards —
without needing 1000 processes.  Each shard is one independent
:class:`~repro.sim.engine.SimManager` over its own slice of the fleet,
and the partition of work across shards is the *same consistent-hash
decision the router makes*: a function (≈ its library's context) hashes
to exactly one shard via :class:`~repro.engine.scheduling.HashRing`, so
every invocation of it lands where its warm instances are.

Because shards share nothing, the sharded makespan is the maximum over
per-shard makespans, and aggregate throughput is total invocations over
that maximum — ring imbalance (some shards draw more functions than
others) shows up directly, which is the honest cost of hash placement.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.scheduling import HashRing
from repro.errors import SimulationError
from repro.sim.calibration import CostModel, ReuseLevel, lnni_cost_model
from repro.sim.engine import SimManager
from repro.sim.machine import build_fleet
from repro.sim.trace import RunResult
from repro.sim.workload import InvocationSpec, Workload


def sharded_workload(
    n_libraries: int = 16, invocations_per_library: int = 256
) -> Workload:
    """A many-library workload (one function per library, no deps).

    Models the router's sweet spot: many independent contexts whose
    invocations can fan out across shards while each context's stream
    stays sticky to one shard.
    """
    if n_libraries < 1 or invocations_per_library < 1:
        raise SimulationError("need at least one library and one invocation")
    specs: List[InvocationSpec] = []
    uid = 0
    for lib in range(n_libraries):
        fname = f"lib-{lib:03d}"
        for _ in range(invocations_per_library):
            specs.append(InvocationSpec(uid=uid, function=fname))
            uid += 1
    return Workload(name=f"sharded-{n_libraries}x{invocations_per_library}", invocations=specs)


def partition_workload(workload: Workload, shard_names: Sequence[str]) -> Dict[str, Workload]:
    """Split a workload across shards by consistent-hashing each function.

    Raises when an invocation's dependency lands on a different shard:
    shards share nothing, so a cross-shard DAG edge has no home (the
    real router has the same restriction — a FunctionCall runs wholly on
    its library's shard).
    """
    if not shard_names:
        raise SimulationError("need at least one shard")
    ring = HashRing(replicas=64)
    for name in shard_names:
        ring.add(name)
    home: Dict[str, str] = {}
    for fname in workload.functions():
        home[fname] = next(ring.walk(fname))
    shard_of: Dict[int, str] = {}
    parts: Dict[str, List[InvocationSpec]] = {name: [] for name in shard_names}
    for spec in workload.invocations:
        shard = home[spec.function]
        shard_of[spec.uid] = shard
        for dep in spec.deps:
            if shard_of.get(dep) != shard:
                raise SimulationError(
                    f"invocation {spec.uid} ({spec.function!r} on {shard}) depends "
                    f"on {dep} homed on {shard_of.get(dep)}: cross-shard DAG edges "
                    "cannot be sharded"
                )
        parts[shard].append(spec)
    return {
        name: Workload(name=f"{workload.name}@{name}", invocations=specs)
        for name, specs in parts.items()
    }


@dataclass
class ShardedRunResult:
    """Aggregate of N independent per-shard simulation runs."""

    workload: str
    level: str
    n_shards: int
    n_workers: int                      # total across shards
    per_shard: Dict[str, RunResult] = field(default_factory=dict)
    function_home: Dict[str, str] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Wall-clock of the whole run: the slowest shard."""
        return max((r.makespan for r in self.per_shard.values()), default=0.0)

    @property
    def total_invocations(self) -> int:
        return sum(len(r.trace.runtimes) for r in self.per_shard.values())

    @property
    def aggregate_throughput(self) -> float:
        m = self.makespan
        return self.total_invocations / m if m > 0 else 0.0

    def invocations_per_shard(self) -> Dict[str, int]:
        return {name: len(r.trace.runtimes) for name, r in self.per_shard.items()}

    def sticky(self) -> bool:
        """True when every function's invocations landed on one shard.

        Holds by construction of the ring partition; recorded so tests
        assert the property on the *output* rather than trusting the
        partitioning code.
        """
        seen: Dict[str, set] = collections.defaultdict(set)
        for shard, result in self.per_shard.items():
            for fname in result.trace.runtimes_by_function:
                seen[fname].add(shard)
        return all(len(shards) == 1 for shards in seen.values())

    def summary(self) -> str:
        rows = [
            f"{self.workload}: {self.n_shards} shards x "
            f"{self.n_workers // max(1, self.n_shards)} workers, "
            f"makespan={self.makespan:.1f}s "
            f"aggregate={self.aggregate_throughput:.1f} inv/s"
        ]
        for name in sorted(self.per_shard):
            r = self.per_shard[name]
            rows.append(
                f"  {name}: {len(r.trace.runtimes)} inv, makespan={r.makespan:.1f}s"
            )
        return "\n".join(rows)


def run_sharded_simulation(
    workload: Workload,
    model: Optional[CostModel] = None,
    level: ReuseLevel = ReuseLevel.L3,
    *,
    n_shards: int = 4,
    workers_per_shard: int = 256,
    seed: int | str = 0,
) -> ShardedRunResult:
    """Simulate ``workload`` sharded over ``n_shards`` manager processes.

    Every shard gets its own Table-3-proportional fleet slice and runs
    its partition independently (shards share nothing by design).
    """
    if n_shards < 1:
        raise SimulationError("need at least one shard")
    model = model or lnni_cost_model()
    shard_names = [f"shard-{i}" for i in range(n_shards)]
    parts = partition_workload(workload, shard_names)
    ring = HashRing(replicas=64)
    for name in shard_names:
        ring.add(name)
    function_home = {
        fname: next(ring.walk(fname)) for fname in workload.functions()
    }
    result = ShardedRunResult(
        workload=workload.name,
        level=level.value if hasattr(level, "value") else str(level),
        n_shards=n_shards,
        n_workers=n_shards * workers_per_shard,
        function_home=function_home,
    )
    for i, name in enumerate(shard_names):
        part = parts[name]
        if not part.invocations:
            continue  # ring left this shard empty; nothing to run
        fleet = build_fleet(workers_per_shard, seed=f"{seed}-{name}")
        sim = SimManager(part, fleet, model, level, seed=f"{seed}-{name}")
        result.per_shard[name] = sim.run()
    return result
