"""The simulated workflow engine: manager, workers, libraries, three levels.

Execution structure mirrors the real engine in :mod:`repro.engine`:

* A *serial* manager dispatches one task/invocation at a time, paying a
  per-dispatch cost that depends on the reuse level (wrapping a whole
  task with serialized context is ~30× costlier than shipping an
  invocation's arguments — Table 2).  At 100k-task scale this serial
  cost is the dominant makespan term, which is exactly the paper's Q3
  finding (L3 barely benefits from more workers).
* Workers have ``slots_per_worker`` invocation slots.  At L1 every task
  reads its context from the shared filesystem (fair-share + heavy-tail
  contention).  At L2 the first task per worker fetches + unpacks the
  environment (manager NIC or peer transfer), later tasks hit the local
  disk cache but still rebuild in-memory state.  At L3 persistent
  libraries pay fetch + unpack + setup once, then serve invocations
  whose only costs are argument loading and execution.
* Idle libraries are reclaimed after ``library_idle_timeout`` — the
  mechanism behind Figure 10's settle-down.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.engine.policies import ArrivalHistory, POLICIES
from repro.errors import SimulationError
from repro.obs.perflog import make_sample, write_perflog
from repro.sim.calibration import CostModel, ReuseLevel, ServiceSampler
from repro.sim.des import EventQueue, FairShareResource
from repro.sim.machine import SimMachine
from repro.sim.trace import RunResult, TraceRecorder
from repro.sim.workload import InvocationSpec, Workload


@dataclass
class _SimLibrary:
    uid: int
    worker: "_SimWorker"
    slots: int = 1
    ready: bool = False
    busy_slots: int = 0
    removed: bool = False
    served: int = 0
    last_active: float = 0.0

    @property
    def idle(self) -> bool:
        return self.busy_slots == 0


@dataclass
class _SimWorker:
    machine: SimMachine
    slots: int
    free_slots: int = 0
    env_state: str = "cold"            # cold | warming | warm
    waiting: List[InvocationSpec] = field(default_factory=list)
    libraries: List[_SimLibrary] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.free_slots = self.slots

    @property
    def library_capacity_left(self) -> int:
        committed = sum(lib.slots for lib in self.libraries if not lib.removed)
        return self.slots - committed


class SimManager:
    """Run one workload at one reuse level over a simulated fleet."""

    def __init__(
        self,
        workload: Workload,
        fleet: List[SimMachine],
        model: CostModel,
        level: ReuseLevel,
        *,
        seed: int | str = 0,
        sample_every: Optional[int] = None,
        perflog_path: Optional[str] = None,
        perflog_every: float = 2.0,
        policy: str = "reactive",
    ):
        if not fleet:
            raise SimulationError("fleet is empty")
        # Serving-layer policy (mirrors repro.engine.policies, same
        # registry of names).  "reactive" keeps the historical LIFO token
        # pop; "sticky"/"prewarm" prefer the warmest free library token,
        # and "prewarm" additionally defers idle reclamation while the
        # arrival history forecasts imminent demand.  "fair" has no
        # meaning without tenants, so the sim treats it as reactive.
        name = (policy or "reactive").lower()
        if name == "default":
            name = "reactive"
        if name not in POLICIES:
            raise SimulationError(f"unknown scheduling policy {policy!r}")
        self.policy = name
        self._arrivals = ArrivalHistory() if name == "prewarm" else None
        workload.validate()
        self.workload = workload
        self.model = model
        self.level = level
        self.queue = EventQueue()
        self.sampler = ServiceSampler(model, seed=seed)
        self.trace = TraceRecorder(
            sample_every=sample_every or max(1, len(workload) // 500)
        )
        self.sharedfs = FairShareResource(
            self.queue, model.fs_capacity, per_job_cap=model.fs_per_reader, name="sharedfs"
        )
        self.mgr_nic = FairShareResource(
            self.queue, model.manager_nic, per_job_cap=model.worker_nic, name="mgr-nic"
        )
        self.workers = [
            _SimWorker(machine=m, slots=model.slots_per_worker) for m in fleet
        ]
        # DAG bookkeeping.
        self._dep_count: Dict[int, int] = {}
        self._dependents: Dict[int, List[int]] = collections.defaultdict(list)
        self._spec_by_id: Dict[int, InvocationSpec] = {}
        self.ready: Deque[InvocationSpec] = collections.deque()
        self._enqueued: set[int] = set()
        for spec in workload.invocations:
            self._spec_by_id[spec.uid] = spec
            self._dep_count[spec.uid] = spec.required_deps()
            for dep in spec.deps:
                self._dependents[dep].append(spec.uid)
            if self._dep_count[spec.uid] == 0:
                self.ready.append(spec)
                self._enqueued.add(spec.uid)
        self._mgr_busy = False
        self._mgr_busy_total = 0.0
        self._lib_uid = 0
        self._free_tokens: Deque[object] = collections.deque()
        if level is not ReuseLevel.L3:
            # At L1/L2 a dispatch token is simply a free worker slot;
            # round-robin across workers so load spreads like the hash ring.
            for slot in range(model.slots_per_worker):
                for worker in self.workers:
                    self._free_tokens.append(worker)
        self._completed_at = 0.0
        self._done = 0
        self._total = len(workload)
        self._env_holders = 0  # workers warm or warming (peer-transfer sources)
        self._rr_next = 0      # round-robin cursor for library placement
        self._waiting_started: Dict[int, float] = {}  # uid -> enqueue time
        # Incremental library accounting (Figures 10/11) — O(1) per event.
        self._active_libraries = 0
        self._active_served = 0
        # Live-telemetry emulation: the sim writes the same JSONL perflog
        # schema (make_sample) as the real manager, in *sim time*, so
        # ``python -m repro.obs report`` reads either.  Disabled (and
        # costless) unless perflog_path is given.
        self.perflog_path = perflog_path
        self.perflog_every = max(1e-6, perflog_every)
        self.perflog_samples: List[Dict[str, int]] = []
        self._perflog_next = 0.0
        self._inflight = 0
        self._dispatched = 0
        self._perflog_prev: tuple[float, int] = (0.0, 0)
        self._warm_workers = 0
        # context (function) -> {"warm": n, "cold": n}: warm means the
        # execution found its context resident (L2 warm worker, L3
        # already-serving library); L1 reloads everything, always cold.
        self._warm_cold: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ run
    def run(self) -> RunResult:
        self._pump()
        # Generous cap: ~40 events per invocation plus library churn.
        self.queue.run(max_events=80 * self._total + 100_000)
        if self._done != self._total:
            raise SimulationError(
                f"simulation stalled: {self._done}/{self._total} completed"
            )
        if self.perflog_path is not None:
            self.perflog_samples.append(self._perflog_sample())  # end state
            write_perflog(self.perflog_path, self.perflog_samples)
        return RunResult(
            workload=self.workload.name,
            level=self.level.value,
            n_workers=len(self.workers),
            makespan=self._completed_at,
            trace=self.trace,
            manager_busy=self._mgr_busy_total,
            events=self.queue.events_processed,
        )

    # -------------------------------------------------------------- manager
    def _mgr_do(self, cost: float, then) -> None:
        """Occupy the serial manager for ``cost`` seconds, then run ``then``."""
        self._mgr_busy = True
        self._mgr_busy_total += cost

        def finish() -> None:
            self._mgr_busy = False
            then()
            self._pump()

        self.queue.schedule(cost, finish)

    def _pump(self) -> None:
        """Dispatch as much ready work as the manager and slots allow."""
        if self._mgr_busy or not self.ready:
            return
        token = self._pop_token()
        if token is None:
            if self.level is ReuseLevel.L3:
                self._maybe_deploy_library()
            return
        spec = self.ready.popleft()
        cost = self.model.mgr_dispatch[self.level]
        self._mgr_do(cost, lambda: self._send(spec, token))

    def _pop_token(self) -> Optional[object]:
        # Sticky/prewarm: prefer the *warmest* free library token (most
        # invocations served) rather than the most recently freed one, so
        # hot contexts absorb load and surplus cold libraries idle out.
        if self._arrivals is not None or self.policy == "sticky":
            best = None
            best_key: Optional[tuple] = None
            for i, token in enumerate(self._free_tokens):
                if not isinstance(token, _SimLibrary) or token.removed:
                    continue
                key = (token.served, i)
                if best_key is None or key > best_key:
                    best, best_key = i, key
            if best is not None:
                token = self._free_tokens[best]
                del self._free_tokens[best]
                return token
        # LIFO: reuse the most recently freed slot/library.  This mirrors
        # the manager "holding on to" a worker and filling its free slots
        # (§3.5.2), keeps hot contexts hot, and lets surplus libraries go
        # idle long enough for reclamation (the Figure 10 settle-down).
        while self._free_tokens:
            token = self._free_tokens.pop()
            if isinstance(token, _SimLibrary) and token.removed:
                continue
            return token
        return None

    def _send(self, spec: InvocationSpec, token: object) -> None:
        self._dispatched += 1
        self._inflight += 1
        if self._arrivals is not None:
            self._arrivals.record(spec.function, self.queue.now)
        if self.level is ReuseLevel.L3:
            assert isinstance(token, _SimLibrary)
            self._begin_invocation_l3(spec, token)
        else:
            assert isinstance(token, _SimWorker)
            self._begin_task(spec, token)

    # ------------------------------------------------------------ L1/L2 path
    def _begin_task(self, spec: InvocationSpec, worker: _SimWorker) -> None:
        # L2 is warm only once this worker's environment is resident;
        # L1 re-reads the context from the shared FS every time.
        self._note_warm_cold(
            spec.function,
            warm=self.level is ReuseLevel.L2 and worker.env_state == "warm",
        )
        start = self.queue.now + self.model.net_latency
        if self.level is ReuseLevel.L2 and worker.env_state != "warm":
            # First task(s) on a cold worker wait for the one-time context
            # fetch + unpack; their recorded runtime includes that wait —
            # this is the paper's L2-Cold case.
            if worker.env_state == "cold":
                self._start_env_fetch(worker)
            worker.waiting.append(spec)
            self._waiting_started[spec.uid] = start
            return
        self._run_task_body(spec, worker, start)

    def _start_env_fetch(self, worker: _SimWorker) -> None:
        """First task on a worker at L2: fetch the environment, then unpack."""
        worker.env_state = "warming"
        bytes_needed = self.model.env_tarball_bytes + self.model.data_bytes

        def after_fetch() -> None:
            unpack = self.sampler.fixed_time(
                self.model.unpack_time, worker.machine.speed_factor
            )
            self.queue.schedule(unpack, lambda: self._env_warm(worker))

        self._transfer(bytes_needed, after_fetch)
        self._env_holders += 1

    def _transfer(self, nbytes: float, on_done) -> None:
        """Context distribution: manager NIC fair-share, or peer spanning tree.

        Once at least ``peer_cap`` workers hold (or are fetching) the
        context, further fetches are served by peers at full line rate
        instead of sharing the manager's NIC — the Figure 3b regime.
        """
        if self.model.peer_transfer and self._env_holders >= self.model.peer_cap:
            duration = nbytes / self.model.worker_nic + self.model.net_latency
            self.queue.schedule(duration, on_done)
        else:
            self.mgr_nic.submit(nbytes, on_done)

    def _env_warm(self, worker: _SimWorker) -> None:
        worker.env_state = "warm"
        self._warm_workers += 1
        waiting, worker.waiting = worker.waiting, []
        for spec in waiting:
            started = self._waiting_started.pop(spec.uid, self.queue.now)
            self._run_task_body(spec, worker, started)

    def _base_exec(self, spec: InvocationSpec) -> float:
        if spec.exec_absolute is not None:
            return spec.exec_absolute
        return self.model.exec_base * spec.exec_units

    def _run_task_body(self, spec: InvocationSpec, worker: _SimWorker, started: float) -> None:
        """Worker-side service for L1/L2 after any environment warm-up."""
        speed = worker.machine.speed_factor
        exec_time = self.sampler.exec_time(
            self._base_exec(spec) + self.model.model_rebuild, speed
        )
        if self.level is ReuseLevel.L1:
            # Context comes from the shared filesystem on every execution.
            fs_work = self.model.l1_fs_bytes * self.sampler.fs_penalty()
            tail = self.sampler.fixed_time(self.model.deser_cold, speed) + exec_time

            def after_fs() -> None:
                self.queue.schedule(
                    tail, lambda: self._finish_task(spec, worker, started, exec_time)
                )

            self.sharedfs.submit(fs_work, after_fs)
        else:  # L2 warm path: local disk context, in-memory state rebuilt
            dur = (
                self.sampler.fixed_time(self.model.startup_local, speed)
                + self.sampler.fixed_time(self.model.deser_hot, speed)
                + exec_time
            )
            self.queue.schedule(
                dur, lambda: self._finish_task(spec, worker, started, exec_time)
            )

    def _finish_task(
        self, spec: InvocationSpec, worker: _SimWorker, started: float, exec_time: float
    ) -> None:
        runtime = self.queue.now - started
        self.trace.record_invocation(
            spec.function,
            runtime,
            {"exec": exec_time, "overhead": max(0.0, runtime - exec_time)},
        )
        self._free_tokens.append(worker)
        self._inflight -= 1
        self._complete(spec)

    # ------------------------------------------------------------------ L3 path
    def _maybe_deploy_library(self) -> None:
        """Deploy a new library when invocations are queued and capacity exists."""
        worker = self._pick_library_worker()
        if worker is None:
            return
        slots = min(self.model.library_slots, worker.library_capacity_left)
        lib = _SimLibrary(uid=self._lib_uid, worker=worker, slots=slots)
        self._lib_uid += 1
        worker.libraries.append(lib)
        self.trace.libraries_deployed_total += 1
        self._active_libraries += 1
        self._mgr_do(
            self.model.mgr_library_deploy, lambda: self._bring_up_library(lib)
        )

    def _pick_library_worker(self) -> Optional[_SimWorker]:
        n = len(self.workers)
        for i in range(n):
            worker = self.workers[(self._rr_next + i) % n]
            if worker.library_capacity_left >= 1:
                self._rr_next = (self._rr_next + i + 1) % n
                return worker
        return None

    def _bring_up_library(self, lib: _SimLibrary) -> None:
        worker = lib.worker
        speed = worker.machine.speed_factor

        def do_setup() -> None:
            setup = self.sampler.fixed_time(self.model.library_setup, speed)
            self.queue.schedule(setup, lambda: self._library_ready(lib))

        if worker.env_state == "warm":
            do_setup()
        elif worker.env_state == "warming":
            # Another library on this worker is already fetching the
            # environment; approximate by waiting one unpack period.
            delay = self.sampler.fixed_time(self.model.unpack_time, speed)
            self.queue.schedule(delay, do_setup)
        else:
            worker.env_state = "warming"
            self._env_holders += 1
            nbytes = self.model.env_tarball_bytes + self.model.data_bytes

            def after_fetch() -> None:
                unpack = self.sampler.fixed_time(self.model.unpack_time, speed)

                def after_unpack() -> None:
                    worker.env_state = "warm"
                    self._warm_workers += 1
                    do_setup()

                self.queue.schedule(unpack, after_unpack)

            self._transfer(nbytes, after_fetch)

    def _library_ready(self, lib: _SimLibrary) -> None:
        if lib.removed:
            return
        lib.ready = True
        lib.last_active = self.queue.now
        for _ in range(lib.slots):
            self._free_tokens.append(lib)
        self._pump()

    def _begin_invocation_l3(self, spec: InvocationSpec, lib: _SimLibrary) -> None:
        # Same rule as the real manager: cold only for the first
        # invocation landing on a fresh instance; once the library is
        # serving, its retained context makes every arrival warm.
        self._note_warm_cold(
            spec.function, warm=lib.served > 0 or lib.busy_slots > 0
        )
        lib.busy_slots += 1
        started = self.queue.now + self.model.net_latency
        speed = lib.worker.machine.speed_factor
        exec_time = self.sampler.exec_time(self._base_exec(spec), speed)
        dur = self.model.net_latency + self.model.invoc_overhead_l3 + exec_time
        self.queue.schedule(
            dur, lambda: self._finish_invocation_l3(spec, lib, started, exec_time)
        )

    def _finish_invocation_l3(
        self, spec: InvocationSpec, lib: _SimLibrary, started: float, exec_time: float
    ) -> None:
        runtime = self.queue.now - started
        lib.busy_slots -= 1
        lib.served += 1
        self._active_served += 1
        lib.last_active = self.queue.now
        self.trace.record_invocation(
            spec.function,
            runtime,
            {"exec": exec_time, "overhead": max(0.0, runtime - exec_time)},
        )
        self._free_tokens.append(lib)
        stamp = lib.last_active
        self.queue.schedule(
            self.model.library_idle_timeout, lambda: self._idle_check(lib, stamp)
        )
        self._inflight -= 1
        self._complete(spec)

    def _idle_check(self, lib: _SimLibrary, stamp: float) -> None:
        """Reclaim a library that served nothing since ``stamp`` (Fig 10)."""
        if lib.removed or not lib.idle or lib.last_active != stamp:
            return
        if self._done >= self._total:
            return  # run is over; keep the final state for the trace
        if self._arrivals is not None and self._forecasts_demand():
            # Prewarm keep-alive: demand is forecast within another idle
            # period, so defer reclamation and re-check.  A forecast that
            # never materialises goes stale (ArrivalHistory grace) and
            # the library is reclaimed on a later check.
            self.queue.schedule(
                self.model.library_idle_timeout,
                lambda: self._idle_check(lib, stamp),
            )
            return
        lib.removed = True
        self.trace.libraries_removed_total += 1
        self._active_libraries -= 1
        self._active_served -= lib.served

    def _forecasts_demand(self) -> bool:
        """True when any function's next arrival is forecast within one
        idle period (sim libraries serve every function of the workload,
        so imminent demand for *any* function justifies keep-alive)."""
        assert self._arrivals is not None
        now = self.queue.now
        window = self.model.library_idle_timeout
        return any(
            self._arrivals.imminent(key, now, window)
            for key in self._arrivals.keys()
        )

    # ---------------------------------------------------------- live telemetry
    def _note_warm_cold(self, context: str, warm: bool) -> None:
        entry = self._warm_cold.get(context)
        if entry is None:
            entry = self._warm_cold[context] = {"warm": 0, "cold": 0}
        entry["warm" if warm else "cold"] += 1

    def _perflog_sample(self) -> Dict[str, object]:
        """One perflog sample in sim time, same schema as the real manager."""
        now = self.queue.now
        libraries = [
            lib
            for worker in self.workers
            for lib in worker.libraries
            if not lib.removed
        ]
        busy = sum(lib.busy_slots for lib in libraries) or self._inflight
        contexts: Dict[str, Dict[str, int]] = {
            fn: {
                "instances": 0,
                "ready": 0,
                "slots": 0,
                "used_slots": 0,
                "served": 0,
                "warm": counts["warm"],
                "cold": counts["cold"],
            }
            for fn, counts in self._warm_cold.items()
        }
        if libraries:
            # Sim libraries serve every function of the workload, so the
            # fleet-wide occupancy lives under one synthetic context
            # rather than being double-counted per function.
            contexts["<libraries>"] = {
                "instances": len(libraries),
                "ready": sum(1 for lib in libraries if lib.ready),
                "slots": sum(lib.slots for lib in libraries),
                "used_slots": sum(lib.busy_slots for lib in libraries),
                "served": self._active_served,
                "warm": 0,
                "cold": 0,
            }
        prev_now, prev_dispatched = self._perflog_prev
        rate = (
            (self._dispatched - prev_dispatched) / (now - prev_now)
            if now > prev_now
            else 0.0
        )
        self._perflog_prev = (now, self._dispatched)
        return make_sample(
            ts=now,
            uptime_s=now,
            tasks_waiting=len(self.ready),
            tasks_running=self._inflight,
            tasks_done=self._done,
            workers_connected=len(self.workers),
            libraries_active=self._active_libraries,
            cache_bytes=self._warm_workers
            * (self.model.env_tarball_bytes + self.model.data_bytes),
            busy_slots=busy,
            dispatch_rate=rate,
            queue_depths={"<ready>": len(self.ready)} if self.ready else {},
            contexts=contexts,
        )

    # ------------------------------------------------------------- completion
    def _active_library_stats(self) -> tuple[int, float]:
        active = self._active_libraries
        mean_share = self._active_served / active if active else 0.0
        return active, mean_share

    def _complete(self, spec: InvocationSpec) -> None:
        self._done += 1
        self._completed_at = self.queue.now
        if self.perflog_path is not None and self.queue.now >= self._perflog_next:
            self._perflog_next = self.queue.now + self.perflog_every
            self.perflog_samples.append(self._perflog_sample())
        if self.level is ReuseLevel.L3:
            active, mean_share = self._active_library_stats()
            self.trace.sample_libraries(active, mean_share)
        for dep_uid in self._dependents.get(spec.uid, ()):
            self._dep_count[dep_uid] -= 1
            if self._dep_count[dep_uid] <= 0 and dep_uid not in self._enqueued:
                self.ready.append(self._spec_by_id[dep_uid])
                self._enqueued.add(dep_uid)
        self._pump()
