"""Trace recording and run results for simulator experiments.

Keeps memory bounded at 100k-invocation scale: per-invocation runtimes
are stored as a flat list (that is what Table 4 / Figure 7 need), while
library-count and share-value curves (Figures 10/11) are sampled every
``sample_every`` completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.stats import Histogram, SummaryStats, summarize


@dataclass
class TraceRecorder:
    """Mutable collection target used by the simulator while running."""

    sample_every: int = 200
    runtimes: List[float] = field(default_factory=list)
    runtimes_by_function: Dict[str, List[float]] = field(default_factory=dict)
    # (completed invocations, active libraries) samples — Figure 10.
    library_timeline: List[Tuple[int, int]] = field(default_factory=list)
    # (completed invocations, mean invocations served per active library) — Fig 11.
    share_timeline: List[Tuple[int, float]] = field(default_factory=list)
    phase_totals: Dict[str, float] = field(default_factory=dict)
    completed: int = 0
    libraries_deployed_total: int = 0
    libraries_removed_total: int = 0

    def record_invocation(self, function: str, runtime: float, phases: Dict[str, float]) -> None:
        self.completed += 1
        self.runtimes.append(runtime)
        self.runtimes_by_function.setdefault(function, []).append(runtime)
        for phase, dur in phases.items():
            self.phase_totals[phase] = self.phase_totals.get(phase, 0.0) + dur

    def sample_libraries(self, active: int, mean_share: float) -> None:
        if self.completed % self.sample_every == 0 or not self.library_timeline:
            self.library_timeline.append((self.completed, active))
            self.share_timeline.append((self.completed, mean_share))


@dataclass
class RunResult:
    """Outcome of one simulated application run."""

    workload: str
    level: str
    n_workers: int
    makespan: float
    trace: TraceRecorder
    manager_busy: float = 0.0
    events: int = 0

    @property
    def runtime_stats(self) -> SummaryStats:
        return summarize(self.trace.runtimes)

    def histogram(self, lo: float = 0.0, hi: float = 40.0, bins: int = 20) -> Histogram:
        """Invocation-run-time histogram clipped at ``hi`` (Figure 7 style)."""
        h = Histogram(lo, hi, bins)
        h.extend(self.trace.runtimes)
        return h

    def peak_libraries(self) -> int:
        if not self.trace.library_timeline:
            return 0
        return max(count for _, count in self.trace.library_timeline)

    def final_mean_share(self) -> float:
        if not self.trace.share_timeline:
            return 0.0
        return self.trace.share_timeline[-1][1]

    def summary_row(self) -> str:
        s = self.runtime_stats
        return (
            f"{self.workload:28s} {self.level:3s} workers={self.n_workers:<4d} "
            f"makespan={self.makespan:9.1f}s mean={s.mean:6.2f}s std={s.std:6.2f}s "
            f"min={s.min:5.2f}s max={s.max:7.2f}s"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (runtimes omitted — use export paths)."""
        s = self.runtime_stats
        return {
            "workload": self.workload,
            "level": self.level,
            "n_workers": self.n_workers,
            "makespan": self.makespan,
            "invocations": s.count,
            "runtime_mean": s.mean,
            "runtime_std": s.std,
            "runtime_min": s.min,
            "runtime_max": s.max,
            "manager_busy": self.manager_busy,
            "events": self.events,
            "libraries_deployed": self.trace.libraries_deployed_total,
            "libraries_removed": self.trace.libraries_removed_total,
            "peak_libraries": self.peak_libraries(),
        }

    def save_json(self, path: str) -> None:
        """Write the summary plus the Figures-10/11 curves as JSON."""
        import json

        payload = dict(self.to_dict())
        payload["library_timeline"] = self.trace.library_timeline
        payload["share_timeline"] = self.trace.share_timeline
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1)

    def save_runtimes_csv(self, path: str) -> None:
        """Write one row per invocation (the Figure-7 raw data)."""
        import csv

        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["index", "runtime_seconds"])
            for i, runtime in enumerate(self.trace.runtimes):
                writer.writerow([i, f"{runtime:.6f}"])
