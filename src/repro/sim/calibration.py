"""Calibration constants for the cluster simulator.

Two kinds of constants appear here:

* **Measured** — taken directly from the paper's Tables 2 and 5
  (environment tarball size, unpack time, library setup time, per-level
  per-invocation execution times, per-invocation manager overhead at
  L3 ≈ 2.5 ms from Table 2).
* **Fitted** — quantities the paper does not report directly (manager
  serial dispatch cost at L1/L2, effective shared-FS bytes per L1
  reload, local interpreter+import startup, jitter/straggler
  distributions).  These are fitted so the simulator reproduces the
  paper's Figure 6 makespans and Table 4 run-time statistics; the fit
  and residuals are documented in EXPERIMENTS.md.

Every stochastic draw goes through :class:`ServiceSampler`, seeded per
(run, invocation) so results are deterministic.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.util.rng import seeded_rng


class ReuseLevel(enum.Enum):
    """The paper's three levels of context reuse (§4.2)."""

    L1 = "L1"  # no reuse: every task pulls context from the shared FS
    L2 = "L2"  # reuse on disk: context cached on worker local disk
    L3 = "L3"  # reuse on disk + memory: persistent library process


@dataclass(frozen=True)
class CostModel:
    """All timing constants for one application under the simulator."""

    # --- manager serial costs (seconds per task/invocation) -----------------
    # L3 value measured: Table 2 reports 2.52 ms per remote invocation.
    # L1/L2 fitted to Figure 6a makespans (the manager must serialize the
    # function+args and register per-task files for every task at L1/L2).
    mgr_dispatch: Dict[ReuseLevel, float] = field(
        default_factory=lambda: {
            ReuseLevel.L1: 0.074,
            ReuseLevel.L2: 0.033,
            ReuseLevel.L3: 0.0035,
        }
    )
    mgr_library_deploy: float = 0.005  # serial cost to send one library

    # --- context artifacts (measured, §4.7) ---------------------------------
    env_tarball_bytes: float = 572e6      # "572 MBs when tarballed"
    env_unpacked_bytes: float = 3.1e9     # "3.1GBs of disk size"
    data_bytes: float = 25e6              # model parameters archive

    # --- shared filesystem (L1 path; Panasas ActiveStor 16) ------------------
    fs_capacity: float = 10.5e9           # 84 Gb/s aggregate read bandwidth
    fs_per_reader: float = 6.0e7          # effective per-client rate (fitted;
                                          # metadata/IOPS bound, not line rate)
    l1_fs_bytes: float = 6.0e8            # effective bytes re-read per L1 task

    # --- network ---------------------------------------------------------------
    manager_nic: float = 1.25e9           # 10 GbE
    worker_nic: float = 1.25e9
    peer_transfer: bool = True            # spanning-tree distribution (Fig 3b)
    peer_cap: int = 3
    net_latency: float = 0.001

    # --- worker-side fixed costs (seconds on the reference machine) ------------
    unpack_time: float = 15.435           # Table 5: L2-cold worker overhead
    library_setup: float = 2.729          # Table 5: L3 library overhead
    deser_cold: float = 0.403             # Table 5: L2-cold invocation overhead
    deser_hot: float = 0.327              # Table 5: L2-hot invocation overhead
    invoc_overhead_l3: float = 0.001      # Table 5: L3 sub-millisecond overheads
    startup_local: float = 3.5            # fitted: interpreter + imports (L2)
    model_rebuild: float = 2.390          # Table 5: exec(L2) - exec(L3)

    # --- execution -----------------------------------------------------------
    exec_base: float = 3.079              # Table 5: L3 exec, one work unit
    cluster_slowdown: float = 1.70        # fitted: shared 32-core node contention
    jitter_sigma: float = 0.20            # lognormal sigma on service times
    straggler_prob: float = 0.01
    straggler_exec: Tuple[float, float] = (2.0, 4.0)   # uniform factor range
    straggler_fs: Tuple[float, float] = (10.0, 28.0)    # FS contention storms

    # --- worker/library geometry (paper §4.2) -----------------------------------
    worker_cores: int = 32
    invocation_cores: int = 2             # LNNI: 2 cores per invocation
    library_slots: int = 1                # 16 one-slot libraries per worker
    library_idle_timeout: float = 30.0    # idle-library reclamation (Fig 10)

    @property
    def slots_per_worker(self) -> int:
        return self.worker_cores // self.invocation_cores


def lnni_cost_model(**overrides: object) -> CostModel:
    """The LNNI application's cost model (ResNet50 inference batches)."""
    return CostModel(**overrides)  # defaults above ARE the LNNI calibration


def examol_cost_model(**overrides: object) -> CostModel:
    """ExaMol cost model: 4-core invocations, bigger quantum-chem tasks.

    ExaMol tasks are minutes-long PM7 / train / infer invocations with a
    heavier software stack (OpenMOPAC + scikit-learn + RDKit); base exec
    times live in the workload spec, this model only reshapes overheads.
    """
    defaults: Dict[str, object] = dict(
        invocation_cores=4,               # §4.2: 8 concurrent invocations/worker
        env_tarball_bytes=8.0e8,
        env_unpacked_bytes=4.0e9,
        l1_fs_bytes=1.1e9,
        exec_base=1.0,                    # workload carries absolute times
        # ExaMol rounds barrier on whole task batches; the paper reports no
        # per-task runtime distribution for it, so the heavy straggler tail
        # (an LNNI/Table-4 artifact) is disabled to keep barriers meaningful.
        straggler_prob=0.0,
        mgr_dispatch={
            ReuseLevel.L1: 0.074,
            ReuseLevel.L2: 0.033,
            ReuseLevel.L3: 0.0025,
        },
    )
    defaults.update(overrides)
    return CostModel(**defaults)  # type: ignore[arg-type]


class ServiceSampler:
    """Deterministic stochastic service-time generator.

    ``scale(phase, base, speed_factor)`` returns the sampled duration for
    one service phase: ``base × speed × cluster_slowdown × lognormal``
    with a small probability of a straggler multiplier.  Samples are
    drawn from a stream seeded by (seed, counter) so each invocation's
    fate is independent of execution interleaving.
    """

    def __init__(self, model: CostModel, seed: int | str = 0):
        self.model = model
        self._rng = seeded_rng("service", seed)

    def jitter(self) -> float:
        sigma = self.model.jitter_sigma
        return float(math.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))

    def maybe_straggle(self, lo_hi: Tuple[float, float]) -> float:
        if float(self._rng.random()) < self.model.straggler_prob:
            lo, hi = lo_hi
            return float(self._rng.uniform(lo, hi))
        return 1.0

    def exec_time(self, base: float, speed_factor: float) -> float:
        return (
            base
            * speed_factor
            * self.model.cluster_slowdown
            * self.jitter()
            * self.maybe_straggle(self.model.straggler_exec)
        )

    def fixed_time(self, base: float, speed_factor: float) -> float:
        """Non-exec service phases (unpack, setup): jitter but no stragglers."""
        return base * speed_factor * self.jitter()

    def fs_penalty(self) -> float:
        """Multiplier on a shared-FS read (contention storms: heavy tail)."""
        return self.jitter() * self.maybe_straggle(self.model.straggler_fs)
