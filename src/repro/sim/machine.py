"""Machine groups of the evaluation cluster (paper Table 3).

Workers in the simulator inherit a *speed factor* from the machine group
they land on: service times scale inversely with the group's per-core
GFlops relative to the reference group (Group 1 — AMD EPYC 7532 — on
which we anchor the Table 5 single-machine measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import SimulationError
from repro.util.rng import seeded_rng

REFERENCE_GFLOPS = 4.4  # Group 1, the anchor for calibrated service times


@dataclass(frozen=True)
class MachineGroup:
    """One row of Table 3."""

    name: str
    prefix: str
    cpu_model: str
    machines: int
    gflops: float
    dram_gb: int

    @property
    def speed_factor(self) -> float:
        """Service-time multiplier relative to the reference group (>1 = slower)."""
        return REFERENCE_GFLOPS / self.gflops


# Table 3, verbatim: 5 groups covering 96.2% of machines used in any run.
PAPER_CLUSTER: List[MachineGroup] = [
    MachineGroup("group1", "d32cepyc[001-070]", "AMD EPYC 7532 32-Core", 58, 4.4, 256),
    MachineGroup("group2", "d32cepyc[076-260]", "AMD EPYC 7543 32-Core", 117, 5.4, 256),
    MachineGroup("group3", "qa-a10-[001-022]", "Xeon Gold 6326 @2.90GHz", 14, 1.9, 256),
    MachineGroup("group4", "qa-a40-[001-010]", "Xeon Gold 6326 @2.90GHz", 7, 1.9, 256),
    MachineGroup("group5", "sa-rtx6ka-[001-005]", "Xeon Silver 4316 @2.30GHz", 5, 1.9, 256),
]


@dataclass(frozen=True)
class SimMachine:
    """A concrete worker host: name, group, and speed factor."""

    name: str
    group: str
    speed_factor: float


def build_fleet(
    n_workers: int,
    groups: Sequence[MachineGroup] = PAPER_CLUSTER,
    *,
    seed: int | str = 0,
    exclude_groups: Sequence[str] = (),
) -> List[SimMachine]:
    """Sample ``n_workers`` machines proportionally to group sizes.

    "All experiments are run with a similar proportion of machine groups
    to that of Table 3 unless explicitly noted otherwise" — the noted
    exceptions (e.g. Q3's L3/50-worker run with no group 2) are expressed
    with ``exclude_groups``.
    """
    usable = [g for g in groups if g.name not in set(exclude_groups)]
    if not usable:
        raise SimulationError("no machine groups left after exclusions")
    if n_workers < 1:
        raise SimulationError("need at least one worker")
    total = sum(g.machines for g in usable)
    rng = seeded_rng("fleet", seed, n_workers)
    # Deterministic proportional allocation (largest remainder), then
    # shuffle assignment order so worker indices don't correlate with speed.
    quotas = []
    for g in usable:
        exact = n_workers * g.machines / total
        quotas.append([g, int(exact), exact - int(exact)])
    assigned = sum(q[1] for q in quotas)
    for q in sorted(quotas, key=lambda q: -q[2]):
        if assigned >= n_workers:
            break
        q[1] += 1
        assigned += 1
    # Guarantee every worker exists even if rounding starved all groups.
    while assigned < n_workers:
        quotas[0][1] += 1
        assigned += 1
    labels: List[MachineGroup] = []
    for g, count, _ in quotas:
        labels.extend([g] * count)
    rng.shuffle(labels)  # type: ignore[arg-type]
    return [
        SimMachine(name=f"worker-{i:04d}", group=g.name, speed_factor=g.speed_factor)
        for i, g in enumerate(labels[:n_workers])
    ]


def fleet_mean_speed(fleet: Sequence[SimMachine]) -> float:
    """Mean service-time multiplier across a fleet (calibration aid)."""
    if not fleet:
        raise SimulationError("empty fleet")
    return sum(m.speed_factor for m in fleet) / len(fleet)
