"""Discrete-event simulation kernel.

:class:`EventQueue` is a deterministic time-ordered event heap with
cancellation; :class:`FairShareResource` is a processor-sharing fluid
resource (aggregate capacity split equally among active jobs, each also
capped by a per-job rate) used for the shared filesystem and the
manager's NIC.  Determinism matters: same seed → byte-identical traces,
so benchmark tables are stable run-to-run.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

EventCallback = Callable[[], None]


class EventQueue:
    """A cancelable min-heap of timed callbacks.

    Ties break by insertion order, making runs deterministic regardless
    of callback content.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._callbacks: Dict[int, EventCallback] = {}
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: EventCallback) -> int:
        """Schedule ``callback`` to fire ``delay`` seconds from now; returns an id."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        eid = next(self._seq)
        heapq.heappush(self._heap, (self.now + delay, eid, eid))
        self._callbacks[eid] = callback
        return eid

    def schedule_at(self, when: float, callback: EventCallback) -> int:
        return self.schedule(when - self.now, callback)

    def cancel(self, event_id: int) -> bool:
        """Cancel a pending event; returns False if it already fired."""
        return self._callbacks.pop(event_id, None) is not None

    def __len__(self) -> int:
        return len(self._callbacks)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._heap:
            when, _, eid = heapq.heappop(self._heap)
            callback = self._callbacks.pop(eid, None)
            if callback is None:
                continue  # cancelled
            if when < self.now - 1e-9:
                raise SimulationError("event queue went backwards in time")
            self.now = max(self.now, when)
            callback()
            self.events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the queue, optionally bounded by time or event count."""
        fired = 0
        while self._callbacks:
            if until is not None and self._peek_time() > until:
                self.now = until
                return
            if not self.step():
                return
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationError(f"exceeded {max_events} events — runaway simulation?")

    def _peek_time(self) -> float:
        while self._heap and self._heap[0][2] not in self._callbacks:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else float("inf")


class FairShareResource:
    """Processor-sharing fluid resource.

    Jobs submit an amount of *work* (e.g. bytes).  At any instant each of
    the ``n`` active jobs progresses at ``min(capacity / n, per_job_cap)``.
    Completions trigger callbacks; rates are recomputed whenever the
    active set changes.

    Implementation uses the standard *virtual time* reduction: since
    every active job progresses at the same instantaneous rate, job
    completion order equals submission-work order, and each job finishes
    when the accumulated per-job progress ``V(t)`` reaches
    ``V(submit) + work``.  All operations are O(log n).
    """

    def __init__(
        self,
        queue: EventQueue,
        capacity: float,
        *,
        per_job_cap: Optional[float] = None,
        name: str = "resource",
    ):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.queue = queue
        self.capacity = capacity
        self.per_job_cap = per_job_cap
        self.name = name
        self._targets: List[Tuple[float, int]] = []  # (virtual finish, jid) heap
        self._done_callbacks: Dict[int, EventCallback] = {}
        self._ids = itertools.count()
        self._virtual = 0.0       # accumulated per-job progress
        self._last_update = 0.0
        self._completion_event: Optional[int] = None
        self.total_jobs = 0
        self.busy_time = 0.0  # integral of (active > 0) dt
        self.peak_concurrency = 0

    # -- internals ---------------------------------------------------------
    def _rate(self) -> float:
        n = len(self._done_callbacks)
        if n == 0:
            return 0.0
        rate = self.capacity / n
        if self.per_job_cap is not None:
            rate = min(rate, self.per_job_cap)
        return rate

    def _advance(self) -> None:
        now = self.queue.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._done_callbacks:
            self._virtual += self._rate() * elapsed
            self.busy_time += elapsed
        self._last_update = now

    def _peek(self) -> Optional[Tuple[float, int]]:
        while self._targets and self._targets[0][1] not in self._done_callbacks:
            heapq.heappop(self._targets)
        return self._targets[0] if self._targets else None

    def _reschedule(self) -> None:
        if self._completion_event is not None:
            self.queue.cancel(self._completion_event)
            self._completion_event = None
        head = self._peek()
        if head is None:
            return
        rate = self._rate()
        delay = max(0.0, (head[0] - self._virtual) / rate) if rate > 0 else float("inf")
        self._completion_event = self.queue.schedule(delay, self._complete)

    def _complete(self) -> None:
        self._completion_event = None
        self._advance()
        completed_any = False
        while True:
            head = self._peek()
            if head is None:
                break
            # Relative tolerance: work is often byte-scale (1e8+), where an
            # absolute epsilon would spin on float rounding.
            tol = 1e-9 * max(1.0, abs(head[0]))
            if head[0] > self._virtual + tol:
                if completed_any:
                    break
                # The event fired for this head job; float rounding left it
                # a hair short of its target — snap forward and finish it.
                self._virtual = head[0]
            _, jid = heapq.heappop(self._targets)
            callback = self._done_callbacks.pop(jid)
            callback()
            completed_any = True
        self._reschedule()

    # -- API --------------------------------------------------------------------
    def submit(self, work: float, on_done: EventCallback) -> int:
        """Start a job of ``work`` units; ``on_done`` fires at completion."""
        if work < 0:
            raise SimulationError("work must be non-negative")
        self._advance()
        jid = next(self._ids)
        heapq.heappush(self._targets, (self._virtual + max(work, 1e-12), jid))
        self._done_callbacks[jid] = on_done
        self.total_jobs += 1
        self.peak_concurrency = max(self.peak_concurrency, len(self._done_callbacks))
        self._reschedule()
        return jid

    @property
    def active_jobs(self) -> int:
        return len(self._done_callbacks)

    def estimated_solo_time(self, work: float) -> float:
        """Time the job would take alone (for calibration sanity checks)."""
        rate = self.capacity
        if self.per_job_cap is not None:
            rate = min(rate, self.per_job_cap)
        return work / rate
