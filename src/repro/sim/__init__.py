"""Discrete-event simulator of the paper's evaluation cluster.

The paper's experiments run 100k-invocation applications on 150 workers
drawn from a 180-machine heterogeneous HTCondor pool (Table 3) with a
Panasas shared filesystem.  That scale is physically unavailable here,
so this subpackage provides a calibrated discrete-event model that
preserves the *cost structure* of the real engine:

* a serial manager with per-dispatch overhead that differs by context-
  reuse level (the dominant term at 100k-task scale — see Q3);
* workers with invocation slots, machine-group speed factors, and
  stochastic service times;
* a fair-share shared-filesystem model (L1 contention);
* manager-NIC / peer spanning-tree context distribution (L2/L3);
* library lifecycle: deploy → unpack → setup → serve → idle-evict
  (Figures 10/11).

Calibration constants derive from the paper's Tables 2 and 5; see
:mod:`repro.sim.calibration` and EXPERIMENTS.md for the fit.
"""

from repro.sim.des import EventQueue, FairShareResource
from repro.sim.machine import MachineGroup, PAPER_CLUSTER, build_fleet
from repro.sim.calibration import CostModel, ReuseLevel, lnni_cost_model, examol_cost_model
from repro.sim.workload import InvocationSpec, Workload, lnni_workload, examol_workload
from repro.sim.engine import SimManager
from repro.sim.trace import RunResult, TraceRecorder
from repro.sim.runner import run_lnni, run_examol, run_simulation

__all__ = [
    "EventQueue",
    "FairShareResource",
    "MachineGroup",
    "PAPER_CLUSTER",
    "build_fleet",
    "CostModel",
    "ReuseLevel",
    "lnni_cost_model",
    "examol_cost_model",
    "InvocationSpec",
    "Workload",
    "lnni_workload",
    "examol_workload",
    "SimManager",
    "RunResult",
    "TraceRecorder",
    "run_lnni",
    "run_examol",
    "run_simulation",
]
