"""Workload generators for the two evaluation applications.

A :class:`Workload` is an ordered set of :class:`InvocationSpec` records
with optional DAG dependencies.  LNNI is a flat bag of identical
inference invocations; ExaMol is an active-learning loop whose rounds
impose barriers (simulate → train → infer → next round), which is what
makes per-task overhead bleed into the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class InvocationSpec:
    """One unit of work submitted to the (simulated) workflow system.

    ``exec_units`` multiplies the cost model's ``exec_base`` (for LNNI,
    ``inferences / 16``); ``exec_absolute`` instead gives an absolute
    base in seconds (used by ExaMol task types).  ``deps`` are ids of
    invocations that must complete first.
    """

    uid: int
    function: str
    exec_units: float = 1.0
    exec_absolute: float | None = None
    deps: Tuple[int, ...] = ()
    # Number of deps that must complete before this invocation is ready;
    # None means all of them.  Colmena-style steering retrains on whatever
    # simulations have arrived rather than barriering on stragglers.
    quorum: int | None = None

    def required_deps(self) -> int:
        if self.quorum is None:
            return len(self.deps)
        return min(self.quorum, len(self.deps))


@dataclass
class Workload:
    name: str
    invocations: List[InvocationSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.invocations)

    def validate(self) -> None:
        """Dependencies must reference earlier invocations (DAG by construction)."""
        seen: set[int] = set()
        ids: set[int] = set()
        for spec in self.invocations:
            if spec.uid in ids:
                raise SimulationError(f"duplicate invocation id {spec.uid}")
            ids.add(spec.uid)
        for spec in self.invocations:
            for dep in spec.deps:
                if dep == spec.uid:
                    raise SimulationError(f"invocation {spec.uid} depends on itself")
                if dep not in ids:
                    raise SimulationError(
                        f"invocation {spec.uid} depends on unknown id {dep}"
                    )
            if spec.quorum is not None and spec.quorum < 0:
                raise SimulationError(f"invocation {spec.uid} has a negative quorum")
            seen.add(spec.uid)

    def functions(self) -> List[str]:
        return sorted({s.function for s in self.invocations})


def lnni_workload(
    n_invocations: int = 100_000, inferences_per_invocation: int = 16
) -> Workload:
    """The Large-Scale Neural Network Inference application (§4.1.1).

    "runs 10k to 100k inference invocations, each of which runs 16 to
    1,600 inferences, on a pretrained ResNet50 model."  Execution cost
    scales linearly with the inference count; 16 inferences is one work
    unit (the Table 5 anchor).
    """
    if n_invocations < 1:
        raise SimulationError("need at least one invocation")
    if inferences_per_invocation < 1:
        raise SimulationError("need at least one inference per invocation")
    units = inferences_per_invocation / 16.0
    wl = Workload(name=f"lnni-{n_invocations}x{inferences_per_invocation}")
    wl.invocations = [
        InvocationSpec(uid=i, function="infer", exec_units=units)
        for i in range(n_invocations)
    ]
    return wl


# ExaMol per-type base execution times (seconds on the reference machine).
# Fitted so the simulated L1/L2 makespans land near Figure 6b (4600s/3364s)
# with the paper's 10k tasks on 150 workers; the simulate:train:infer mix
# follows the application's structure (PM7 calculations dominate).
EXAMOL_TASK_TIMES: Dict[str, float] = {
    "simulate": 44.0,    # PM7 ionization-potential calculation
    "train": 30.0,       # scikit-learn surrogate retrain
    "infer": 8.0,        # surrogate screening batch
}

# Fraction of a round's simulations a retrain waits for.  Colmena steers
# continuously: training starts once enough new data has arrived instead
# of barriering on the slowest simulation.
EXAMOL_TRAIN_QUORUM = 0.6


def examol_workload(
    n_tasks: int = 10_000,
    *,
    rounds: int = 16,
    trains_per_round: int = 2,
    infer_fraction: float = 0.10,
) -> Workload:
    """The ExaMol molecular-design application (§4.1.2).

    Structure per active-learning round:

    1. a batch of ``simulate`` tasks (PM7 calculations) — independent;
    2. ``train`` tasks that depend on every simulation of the round;
    3. ``infer`` tasks that depend on the round's training;
    4. the next round's simulations depend on this round's inferences
       (the thinker picks new candidates from the inference ranking).

    Colmena pipelines rounds partially; we model that by having round
    ``r+1`` simulations depend only on half of round ``r``'s inferences.
    """
    if n_tasks < rounds * (trains_per_round + 2):
        raise SimulationError("n_tasks too small for the requested round count")
    wl = Workload(name=f"examol-{n_tasks}")
    per_round = n_tasks // rounds
    n_infer = max(1, int(per_round * infer_fraction))
    n_sim = per_round - n_infer - trains_per_round
    if n_sim < 1:
        raise SimulationError("round structure leaves no simulate tasks")
    uid = 0
    prev_gate: List[int] = []  # inference ids gating the next round
    produced = 0
    for r in range(rounds):
        # Remainder tasks join the last round's simulations.
        extra = (n_tasks - per_round * rounds) if r == rounds - 1 else 0
        sims: List[int] = []
        gate = tuple(prev_gate)
        for _ in range(n_sim + extra):
            wl.invocations.append(
                InvocationSpec(
                    uid=uid,
                    function="simulate",
                    exec_absolute=EXAMOL_TASK_TIMES["simulate"],
                    deps=gate,
                )
            )
            sims.append(uid)
            uid += 1
        trains: List[int] = []
        train_quorum = max(1, int(len(sims) * EXAMOL_TRAIN_QUORUM))
        for _ in range(trains_per_round):
            wl.invocations.append(
                InvocationSpec(
                    uid=uid,
                    function="train",
                    exec_absolute=EXAMOL_TASK_TIMES["train"],
                    deps=tuple(sims),
                    quorum=train_quorum,
                )
            )
            trains.append(uid)
            uid += 1
        infers: List[int] = []
        for _ in range(n_infer):
            wl.invocations.append(
                InvocationSpec(
                    uid=uid,
                    function="infer",
                    exec_absolute=EXAMOL_TASK_TIMES["infer"],
                    deps=tuple(trains),
                    quorum=1,  # screen with whichever retrained model lands first
                )
            )
            infers.append(uid)
            uid += 1
        produced += n_sim + extra + trains_per_round + n_infer
        gate_infers = infers[: max(1, len(infers) // 2)]
        prev_gate = gate_infers
    wl.validate()
    return wl
