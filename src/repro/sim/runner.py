"""High-level experiment runners: one call per paper experiment cell.

These wrap fleet construction, cost-model selection, and the simulation
loop so that benchmarks and examples read like the experiment matrix::

    result = run_lnni(level=ReuseLevel.L3, n_invocations=100_000, n_workers=150)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.calibration import CostModel, ReuseLevel, examol_cost_model, lnni_cost_model
from repro.sim.engine import SimManager
from repro.sim.machine import build_fleet
from repro.sim.trace import RunResult
from repro.sim.workload import Workload, examol_workload, lnni_workload


def run_simulation(
    workload: Workload,
    model: CostModel,
    level: ReuseLevel,
    *,
    n_workers: int = 150,
    seed: int | str = 0,
    exclude_groups: Sequence[str] = (),
    sample_every: Optional[int] = None,
    perflog: Optional[str] = None,
    perflog_every: float = 2.0,
    policy: str = "reactive",
) -> RunResult:
    """Simulate ``workload`` at ``level`` on a Table-3-proportional fleet.

    ``perflog`` names a JSONL path; when given, the sim emits the same
    time-series performance-log schema as the real manager (in sim time)
    for ``python -m repro.obs report``.
    """
    fleet = build_fleet(n_workers, seed=seed, exclude_groups=exclude_groups)
    sim = SimManager(
        workload,
        fleet,
        model,
        level,
        seed=seed,
        sample_every=sample_every,
        perflog_path=perflog,
        perflog_every=perflog_every,
        policy=policy,
    )
    return sim.run()


def run_lnni(
    level: ReuseLevel,
    *,
    n_invocations: int = 100_000,
    inferences_per_invocation: int = 16,
    n_workers: int = 150,
    seed: int | str = 0,
    exclude_groups: Sequence[str] = (),
    model: Optional[CostModel] = None,
    perflog: Optional[str] = None,
    perflog_every: float = 2.0,
) -> RunResult:
    """One LNNI cell of the experiment matrix (Figures 6a/7/8/9/10/11, Table 4)."""
    wl = lnni_workload(n_invocations, inferences_per_invocation)
    return run_simulation(
        wl,
        model or lnni_cost_model(),
        level,
        n_workers=n_workers,
        seed=seed,
        exclude_groups=exclude_groups,
        perflog=perflog,
        perflog_every=perflog_every,
    )


def run_examol(
    level: ReuseLevel,
    *,
    n_tasks: int = 10_000,
    n_workers: int = 150,
    seed: int | str = 0,
    model: Optional[CostModel] = None,
    perflog: Optional[str] = None,
) -> RunResult:
    """One ExaMol cell (Figure 6b).  The paper evaluates L1 and L2 only."""
    wl = examol_workload(n_tasks)
    return run_simulation(
        wl,
        model or examol_cost_model(),
        level,
        n_workers=n_workers,
        seed=seed,
        perflog=perflog,
    )
