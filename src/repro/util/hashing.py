"""Content hashing for unique, immutable data naming.

The paper (§2.2.2) requires that "any transferable data in the system has
to be uniquely identified and read-only, otherwise data corruption can
silently happen ... such as naming files based on the hash of their
contents."  Every file tracked by the manager, every environment package,
and every serialized function body in this repository is addressed by the
SHA-256 of its contents, exactly as TaskVine names its cached files.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable

_CHUNK = 1 << 20  # 1 MiB read chunks keep memory bounded for large files.


def hash_bytes(data: bytes) -> str:
    """Return the hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def hash_file(path: str | os.PathLike[str]) -> str:
    """Return the hex SHA-256 digest of the file at ``path``.

    Reads in 1 MiB chunks so multi-GB environment tarballs do not have to
    fit in memory.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def content_hash(*parts: bytes | str) -> str:
    """Hash a sequence of heterogeneous parts into one stable digest.

    Each part is length-prefixed before hashing so that the concatenation
    is unambiguous: ``content_hash(b"ab", b"c") != content_hash(b"a", b"bc")``.
    Strings are encoded as UTF-8.
    """
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            part = part.encode("utf-8")
        digest.update(len(part).to_bytes(8, "big"))
        digest.update(part)
    return digest.hexdigest()


def short_hash(full: str, length: int = 12) -> str:
    """Abbreviate a hex digest for display and file naming.

    12 hex chars (48 bits) keeps collision probability negligible for the
    object counts this system handles while keeping paths readable.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    return full[:length]


def merkle_root(hashes: Iterable[str]) -> str:
    """Combine an ordered list of digests into a single root digest.

    Used to derive one identity for a *set* of context elements (code +
    dependency package + data files) so an entire function context can be
    deduplicated by a single key on workers.
    """
    digest = hashlib.sha256()
    count = 0
    for h in hashes:
        digest.update(bytes.fromhex(h))
        count += 1
    digest.update(count.to_bytes(8, "big"))
    return digest.hexdigest()
