"""Deterministic random-number helpers.

Every stochastic component (simulator service times, synthetic workloads,
molecule generation) draws from a generator seeded through these helpers
so that experiments are reproducible run-to-run — a requirement for the
benchmark harness to emit stable tables.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import content_hash


def stable_seed(*parts: str | int) -> int:
    """Derive a 63-bit seed deterministically from a sequence of labels.

    Independent streams (e.g. per-worker service-time jitter) are obtained
    by including distinguishing labels, so adding a new stream never
    perturbs existing ones the way sequential ``seed+1`` schemes do.
    """
    digest = content_hash(*[str(p) for p in parts])
    return int(digest[:16], 16) & 0x7FFF_FFFF_FFFF_FFFF


def seeded_rng(*parts: str | int) -> np.random.Generator:
    """A NumPy ``Generator`` seeded via :func:`stable_seed`."""
    return np.random.default_rng(stable_seed(*parts))
