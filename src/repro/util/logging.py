"""Structured logging for the engine's distributed components.

Every process (manager, worker, library) logs through a logger named
``repro.<component>`` with a uniform format carrying the component name
and monotonic-ish timestamps.  Verbosity is controlled by the
``REPRO_LOG`` environment variable (``debug``/``info``/``warning``;
unset = silent), so production runs pay nothing and a failing
multi-process test can be replayed with full protocol traces::

    REPRO_LOG=debug pytest tests/test_engine_integration.py -k peer
"""

from __future__ import annotations

import logging
import os
import sys

_FORMAT = "%(asctime)s %(name)s [%(levelname).1s] %(message)s"
_configured = False


def _level_from_env() -> int | None:
    raw = os.environ.get("REPRO_LOG", "").strip().lower()
    if not raw:
        return None
    return {
        "debug": logging.DEBUG,
        "info": logging.INFO,
        "warning": logging.WARNING,
        "warn": logging.WARNING,
        "error": logging.ERROR,
    }.get(raw, logging.INFO)


def get_logger(component: str) -> logging.Logger:
    """Logger for one component (``manager``, ``worker.w0``, ``library.3``).

    First call configures the ``repro`` root logger from ``REPRO_LOG``;
    with the variable unset, a NullHandler keeps everything silent.
    """
    global _configured
    root = logging.getLogger("repro")
    if not _configured:
        level = _level_from_env()
        if level is None:
            root.addHandler(logging.NullHandler())
        else:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
            root.addHandler(handler)
            root.setLevel(level)
        _configured = True
    return root.getChild(component)


def trace_dir() -> str | None:
    """Directory for per-component trace JSONL files, or ``None``.

    Controlled by ``REPRO_TRACE_DIR``, the tracing counterpart of
    ``REPRO_LOG``: child processes inherit the environment, so setting
    it on the manager routes every component's flush to one run dir.
    """
    raw = os.environ.get("REPRO_TRACE_DIR", "").strip()
    return raw or None


def reset_for_tests() -> None:
    """Drop cached configuration so tests can exercise REPRO_LOG handling."""
    global _configured
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    _configured = False
