"""Shared utilities: hashing, timing, statistics, RNG, and logging helpers."""

from repro.util.hashing import content_hash, hash_bytes, hash_file, short_hash
from repro.util.timer import Stopwatch, Timer
from repro.util.stats import Histogram, SummaryStats, summarize
from repro.util.rng import seeded_rng, stable_seed
from repro.util.logging import get_logger

__all__ = [
    "content_hash",
    "hash_bytes",
    "hash_file",
    "short_hash",
    "Stopwatch",
    "Timer",
    "Histogram",
    "SummaryStats",
    "summarize",
    "seeded_rng",
    "stable_seed",
    "get_logger",
]
