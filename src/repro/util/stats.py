"""Summary statistics and histograms for invocation-runtime analysis.

Table 4 reports mean/std/min/max of invocation run times and Figure 7
shows their histograms; these classes regenerate both from raw traces
without pulling in a plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class SummaryStats:
    """Mean, (sample) standard deviation, min, max, and count of a sample."""

    count: int
    mean: float
    std: float
    min: float
    max: float

    def row(self, precision: int = 2) -> Tuple[str, str, str, str]:
        """Format as the four columns of Table 4."""
        fmt = f"{{:.{precision}f}}"
        return (
            fmt.format(self.mean),
            fmt.format(self.std),
            fmt.format(self.min),
            fmt.format(self.max),
        )


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over ``values``.

    Uses the sample standard deviation (ddof=1) when two or more values are
    present, matching how the paper reports spread; a single observation
    has zero spread by definition here.
    """
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return SummaryStats(
        count=n, mean=mean, std=math.sqrt(var), min=min(values), max=max(values)
    )


class Histogram:
    """Fixed-width histogram over ``[lo, hi)`` with overflow tracking.

    Figure 7 clips its display at 40 seconds "for better visualization";
    ``overflow`` keeps the count of clipped observations so the clip is
    explicit rather than silent.
    """

    def __init__(self, lo: float, hi: float, bins: int):
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._width = (hi - lo) / bins

    def add(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            self.counts[int((value - self.lo) / self._width)] += 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def edges(self) -> List[float]:
        """Bin edges, length ``bins + 1``."""
        return [self.lo + i * self._width for i in range(self.bins + 1)]

    def mode_range(self) -> Tuple[float, float]:
        """The ``[lo, hi)`` range of the most populated bin.

        Used to check Figure 7's qualitative claim that L1 invocations
        cluster around 12-20s, L2 around 10-16s, and L3 around 3-7s.
        """
        idx = max(range(self.bins), key=lambda i: self.counts[i])
        return (self.lo + idx * self._width, self.lo + (idx + 1) * self._width)

    def render(self, width: int = 50, label_fmt: str = "{:6.1f}") -> str:
        """ASCII rendering, one row per bin, bar lengths scaled to ``width``."""
        peak = max(self.counts) if any(self.counts) else 1
        lines = []
        for i, count in enumerate(self.counts):
            lo = self.lo + i * self._width
            bar = "#" * max(0, round(width * count / peak))
            lines.append(f"{label_fmt.format(lo)}s | {bar} {count}")
        if self.overflow:
            lines.append(f">{self.hi:.0f}s clipped: {self.overflow}")
        return "\n".join(lines)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of ``values``."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    # Clamp: a*(1-f) + b*f can land one ulp outside [a, b] in floating
    # point (e.g. tiny subnormal neighbours), which breaks the invariant
    # min <= percentile <= max that callers rely on.
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    return min(max(value, ordered[lo]), ordered[hi])
