"""Monotonic timing helpers used for overhead breakdowns.

Table 5 of the paper decomposes invocation latency into transfer, worker,
library, and execution components; these helpers give every layer of the
real engine a uniform way to record those components.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


class Timer:
    """Context manager measuring wall-clock duration with a monotonic clock.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = time.monotonic() - self._start


@dataclass
class Stopwatch:
    """Accumulates named time spans for an overhead breakdown.

    Spans with the same name accumulate, so repeated phases (e.g. several
    cache probes within one task dispatch) sum into one component.
    """

    spans: Dict[str, float] = field(default_factory=dict)
    _open: Dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> None:
        if name in self._open:
            raise ValueError(f"span {name!r} already started")
        self._open[name] = time.monotonic()

    def stop(self, name: str) -> float:
        try:
            begun = self._open.pop(name)
        except KeyError:
            raise ValueError(f"span {name!r} was not started") from None
        duration = time.monotonic() - begun
        self.spans[name] = self.spans.get(name, 0.0) + duration
        return duration

    def measure(self, name: str) -> "_SpanContext":
        """Return a context manager recording one span named ``name``."""
        return _SpanContext(self, name)

    def total(self) -> float:
        """Sum of all recorded spans (open spans are excluded)."""
        return sum(self.spans.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.spans)


class _SpanContext:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name

    def __enter__(self) -> None:
        self._watch.start(self._name)

    def __exit__(self, *exc: object) -> None:
        self._watch.stop(self._name)
